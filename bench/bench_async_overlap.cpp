// Extension of Table 10 along the paper's own suggestion (Section 4.4):
// "the latest devices support asynchronous transfers, which enable overlap
// between data transfer and computation". For a stream of 16 independent
// 256^3 FFT offload jobs, compare the synchronous schedule the paper
// measured with double-buffered pipelines (single copy engine, as on the
// 8800 series, and dual engines as on later parts) — and cross-check the
// closed-form pipeline algebra against the sim's event-driven stream
// scheduler: the "rate err" columns report how far the scheduler's
// steady-state per-job period is from the algebraic bound (must be < 1%).
#include "bench_util.h"
#include "gpufft/offload.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::init(&argc, argv);

  const Shape3 shape = cube(bench::pick<std::size_t>(256, 32));
  const std::size_t jobs = bench::pick<std::size_t>(16, 3);
  bench::banner("Section 4.4 extension — async transfer overlap (" +
                std::to_string(jobs) + " x " + std::to_string(shape.nx) +
                "^3 offload jobs)");

  TextTable t;
  t.header({"Model", "sync ms", "algebra 1 DMA ms", "sched 1 DMA ms",
            "rate err 1 DMA", "algebra 2 DMA ms", "sched 2 DMA ms",
            "rate err 2 DMA", "speedup (1 DMA)"});
  for (const auto& spec : sim::all_gpus()) {
    sim::Device dev(spec);
    const auto o = gpufft::measure_offload(dev, shape, jobs);
    const double err1 =
        100.0 * (o.sched_rate_1dma_ms / o.algebra_rate_1dma_ms() - 1.0);
    const double err2 =
        100.0 * (o.sched_rate_2dma_ms / o.algebra_rate_2dma_ms() - 1.0);
    t.row({spec.name, TextTable::fmt(o.sync_ms, 0),
           TextTable::fmt(o.overlap_1dma_ms, 0),
           TextTable::fmt(o.sched_1dma_ms, 0),
           TextTable::fmt(err1, 2) + "%",
           TextTable::fmt(o.overlap_2dma_ms, 0),
           TextTable::fmt(o.sched_2dma_ms, 0),
           TextTable::fmt(err2, 2) + "%",
           TextTable::fmt(o.sync_ms / o.sched_1dma_ms, 2) + "x"});
    bench::add_row({"overlap/" + spec.name + "/sync", o.sync_ms, {}});
    bench::add_row({"overlap/" + spec.name + "/sched_1dma", o.sched_1dma_ms,
                    {{"speedup", o.sync_ms / o.sched_1dma_ms},
                     {"rate_err_pct", err1}}});
    bench::add_row({"overlap/" + spec.name + "/sched_2dma", o.sched_2dma_ms,
                    {{"speedup", o.sync_ms / o.sched_2dma_ms},
                     {"rate_err_pct", err2}}});
  }
  t.print(std::cout);
  std::cout << "\nThe event-driven scheduler (sim/stream.h) and the "
               "closed-form pipeline algebra agree on the steady-state "
               "per-job rate to within 1%; the scheduler's makespans run "
               "slightly below the closed form because the greedy schedule "
               "overlaps part of the fill/drain. Overlap recovers part of "
               "the PCIe loss, but copies still bound the single-engine "
               "cards — the paper's conclusion that confinement (keeping "
               "the working set on the card) is the real fix stands.\n";
  return bench::run_benchmarks(argc, argv);
}
