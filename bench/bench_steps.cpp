// Tables 6 and 7: per-step elapsed time and achieved bandwidth of the
// conventional six-step algorithm (FFT steps vs transpose steps) and of
// the bandwidth-intensive five-step algorithm, for the 256^3 transform on
// all three cards.
#include "bench_util.h"
#include "gpufft/conventional3d.h"
#include "gpufft/plan.h"

namespace repro::bench {
namespace {

struct PaperSteps {
  // {time_ms, gbs} per aggregated step group.
  double fft_ms, fft_gbs;      // conventional steps 1,3,5
  double tr_ms, tr_gbs;        // conventional steps 2,4,6
  double s13_ms, s13_gbs;      // ours steps 1,3
  double s24_ms, s24_gbs;      // ours steps 2,4
  double s5_ms, s5_gbs;        // ours step 5
};

const PaperSteps kPaper[3] = {
    /* GT  */ {5.74, 46.7, 13.0, 20.7, 6.65, 40.4, 6.70, 40.0, 5.72, 47.0},
    /* GTS */ {5.09, 52.7, 12.3, 21.8, 6.09, 44.1, 6.23, 43.1, 5.17, 51.9},
    /* GTX */ {5.52, 48.5, 7.85, 34.2, 4.39, 61.2, 4.70, 57.1, 5.52, 48.6}};

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) {
  using namespace repro;
  using gpufft::StepTiming;
  bench::init(&argc, argv);
  bench::banner("Tables 6 & 7 — per-step time/bandwidth of 256^3");
  const Shape3 shape = cube(bench::pick<std::size_t>(256, 64));

  TextTable t6;
  t6.header({"Model", "FFT steps 1,3,5 ms (paper)", "GB/s (paper)",
             "Transpose 2,4,6 ms (paper)", "GB/s (paper)"});
  TextTable t7;
  t7.header({"Model", "Steps 1,3 ms (paper)", "GB/s (paper)",
             "Steps 2,4 ms (paper)", "GB/s (paper)",
             "Step 5 ms (paper)", "GB/s (paper)"});

  int gi = 0;
  for (const auto& spec : sim::all_gpus()) {
    const auto& paper = bench::kPaper[gi++];

    // --- Table 6: conventional six-step ---
    {
      sim::Device dev(spec);
      auto data = dev.alloc<cxf>(shape.volume());
      gpufft::ConventionalFft3D plan(dev, shape,
                                     gpufft::Direction::Forward);
      const auto steps = plan.execute(data);
      const double fft_ms = (steps[0].ms + steps[2].ms + steps[4].ms) / 3.0;
      const double fft_gbs =
          (steps[0].gbs + steps[2].gbs + steps[4].gbs) / 3.0;
      const double tr_ms = (steps[1].ms + steps[3].ms + steps[5].ms) / 3.0;
      const double tr_gbs =
          (steps[1].gbs + steps[3].gbs + steps[5].gbs) / 3.0;
      t6.row({spec.name,
              TextTable::fmt(fft_ms, 2) + " (" +
                  TextTable::fmt(paper.fft_ms, 2) + ")",
              TextTable::fmt(fft_gbs) + " (" + TextTable::fmt(paper.fft_gbs) +
                  ")",
              TextTable::fmt(tr_ms, 2) + " (" +
                  TextTable::fmt(paper.tr_ms, 2) + ")",
              TextTable::fmt(tr_gbs) + " (" + TextTable::fmt(paper.tr_gbs) +
                  ")"});
      bench::add_row({"conventional/" + spec.name + "/fft_step", fft_ms,
                      {{"GBps", fft_gbs}}});
      bench::add_row({"conventional/" + spec.name + "/transpose_step",
                      tr_ms,
                      {{"GBps", tr_gbs}}});
    }

    // --- Table 7: bandwidth-intensive five-step ---
    {
      sim::Device dev(spec);
      auto data = dev.alloc<cxf>(shape.volume());
      gpufft::BandwidthFft3D plan(dev, shape, gpufft::Direction::Forward);
      const auto steps = plan.execute(data);
      const double s13_ms = (steps[0].ms + steps[2].ms) / 2.0;
      const double s13_gbs = (steps[0].gbs + steps[2].gbs) / 2.0;
      const double s24_ms = (steps[1].ms + steps[3].ms) / 2.0;
      const double s24_gbs = (steps[1].gbs + steps[3].gbs) / 2.0;
      t7.row({spec.name,
              TextTable::fmt(s13_ms, 2) + " (" +
                  TextTable::fmt(paper.s13_ms, 2) + ")",
              TextTable::fmt(s13_gbs) + " (" + TextTable::fmt(paper.s13_gbs) +
                  ")",
              TextTable::fmt(s24_ms, 2) + " (" +
                  TextTable::fmt(paper.s24_ms, 2) + ")",
              TextTable::fmt(s24_gbs) + " (" + TextTable::fmt(paper.s24_gbs) +
                  ")",
              TextTable::fmt(steps[4].ms, 2) + " (" +
                  TextTable::fmt(paper.s5_ms, 2) + ")",
              TextTable::fmt(steps[4].gbs) + " (" +
                  TextTable::fmt(paper.s5_gbs) + ")"});
      bench::add_row({"bandwidth/" + spec.name + "/steps13", s13_ms,
                      {{"GBps", s13_gbs}}});
      bench::add_row({"bandwidth/" + spec.name + "/steps24", s24_ms,
                      {{"GBps", s24_gbs}}});
      bench::add_row({"bandwidth/" + spec.name + "/step5", steps[4].ms,
                      {{"GBps", steps[4].gbs}}});
    }
  }

  std::cout << "Table 6 — conventional six-step algorithm (per-step "
               "averages):\n";
  t6.print(std::cout);
  std::cout << "\nTable 7 — bandwidth-intensive five-step algorithm:\n";
  t7.print(std::cout);
  return bench::run_benchmarks(argc, argv);
}
