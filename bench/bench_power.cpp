// Table 13: whole-system power while looping the 256^3 FFT, and the
// resulting GFLOPS/Watt — the "orders of magnitude boost in power&cost vs.
// performance" headline. GPU GFLOPS come from the simulated on-board runs;
// the CPU row uses the calibrated FFTW model.
#include "bench_util.h"
#include "gpufft/plan.h"
#include "sim/power.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::init(&argc, argv);
  bench::banner("Table 13 — whole-system power efficiency (256^3 FFT)");

  const Shape3 shape = cube(bench::pick<std::size_t>(256, 64));

  struct PaperRow {
    double idle, load, gflops, gpw;
  };
  const PaperRow paper_cpu = {126, 140, 10.3, 0.074};
  const PaperRow paper_gpu[3] = {{180, 215, 62.2, 0.289},
                                 {196, 238, 67.2, 0.282},
                                 {224, 290, 84.4, 0.291}};

  TextTable t;
  t.header({"Configuration", "Idle W", "FFT W", "GFLOPS (paper)",
            "GFLOPS/W (paper)"});

  // CPU row (RIVA128 installed, compute on the CPU).
  {
    const auto cpu = sim::cpu_fft3d_time(sim::amd_phenom_9500(), shape);
    const auto report =
        sim::make_power_report(sim::power_cpu_riva128(), cpu.gflops);
    t.row({report.config, TextTable::fmt(report.idle_watts, 0),
           TextTable::fmt(report.load_watts, 0),
           TextTable::fmt(report.gflops) + " (" +
               TextTable::fmt(paper_cpu.gflops) + ")",
           TextTable::fmt(report.gflops_per_watt, 3) + " (" +
               TextTable::fmt(paper_cpu.gpw, 3) + ")"});
    bench::add_row({"power/CPU", cpu.total_ms,
                    {{"GFLOPS_per_W", report.gflops_per_watt}}});
  }

  int gi = 0;
  for (const auto& spec : sim::all_gpus()) {
    const auto& paper = paper_gpu[gi++];
    sim::Device dev(spec);
    auto data = dev.alloc<cxf>(shape.volume());
    gpufft::BandwidthFft3D plan(dev, shape, gpufft::Direction::Forward);
    plan.execute(data);
    const double gflops = bench::reported_gflops(shape, plan.last_total_ms());
    const auto report =
        sim::make_power_report(sim::power_for_gpu(spec), gflops);
    t.row({report.config, TextTable::fmt(report.idle_watts, 0),
           TextTable::fmt(report.load_watts, 0),
           TextTable::fmt(report.gflops) + " (" +
               TextTable::fmt(paper.gflops) + ")",
           TextTable::fmt(report.gflops_per_watt, 3) + " (" +
               TextTable::fmt(paper.gpw, 3) + ")"});
    bench::add_row({"power/" + spec.name, plan.last_total_ms(),
                    {{"GFLOPS_per_W", report.gflops_per_watt}}});
  }
  t.print(std::cout);
  std::cout << "\nGPUs deliver ~4x the GFLOPS/Watt of the quad-core CPU, "
               "as in the paper.\n";
  return bench::run_benchmarks(argc, argv);
}
