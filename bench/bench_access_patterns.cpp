// Tables 3 and 4: achieved memory bandwidth for each input/output access
// pattern combination of the 16-point multirow copy over V(256,16,16,16,16)
// — 42 blocks x 64 threads on the 8800 GT, 48 x 64 on the 8800 GTX.
#include "bench_util.h"
#include "gpufft/copy_kernels.h"

namespace repro::bench {
namespace {

using gpufft::Pattern;

// Paper values, rows = input pattern A..D, cols = output pattern A..D.
constexpr double kPaperGT[4][4] = {{47.4, 47.9, 46.8, 47.1},
                                   {48.2, 48.3, 46.8, 47.1},
                                   {47.3, 47.1, 34.4, 33.3},
                                   {45.6, 45.2, 32.6, 27.8}};
constexpr double kPaperGTX[4][4] = {{71.5, 71.5, 67.7, 66.8},
                                    {71.3, 71.3, 67.6, 67.0},
                                    {68.7, 68.5, 51.3, 50.4},
                                    {67.5, 66.7, 50.0, 43.7}};

void run_table(const sim::GpuSpec& spec, const double paper[4][4],
               const char* table_name) {
  sim::Device dev(spec);
  const unsigned grid = gpufft::default_grid_blocks(spec);
  std::cout << table_name << " — " << spec.name << " (" << grid
            << " blocks x 64 threads), GB/s, measured (paper)\n";
  TextTable t;
  t.header({"in\\out", "A", "B", "C", "D"});
  const Pattern pats[4] = {Pattern::A, Pattern::B, Pattern::C, Pattern::D};
  const int in_rows = pick(4, 1);  // smoke: one input-pattern row
  for (int i = 0; i < in_rows; ++i) {
    std::vector<std::string> cells{gpufft::pattern_name(pats[i])};
    for (int o = 0; o < 4; ++o) {
      auto in = dev.alloc<cxf>(gpufft::pattern_shape().volume());
      auto out = dev.alloc<cxf>(gpufft::pattern_shape().volume());
      gpufft::PatternCopyKernel k(in, out, pats[i], pats[o], grid);
      const auto r = dev.launch(k);
      const double gbs = 2.0 * gpufft::pattern_shape().volume() *
                         sizeof(cxf) / (r.total_ms * 1e6);
      cells.push_back(TextTable::fmt(gbs) + " (" +
                      TextTable::fmt(paper[i][o]) + ")");
      add_row({std::string("copy/") + spec.name + "/" +
                   gpufft::pattern_name(pats[i]) + "_to_" +
                   gpufft::pattern_name(pats[o]),
               r.total_ms,
               {{"GBps", gbs}, {"paper_GBps", paper[i][o]}}});
    }
    t.row(cells);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) {
  using namespace repro;
  bench::init(&argc, argv);
  bench::banner("Tables 3 & 4 — access-pattern bandwidth of the 16-point copy");
  bench::run_table(sim::geforce_8800_gt(), bench::kPaperGT, "Table 3");
  if (!bench::smoke()) {
    bench::run_table(sim::geforce_8800_gtx(), bench::kPaperGTX, "Table 4");
  }
  return repro::bench::run_benchmarks(argc, argv);
}
