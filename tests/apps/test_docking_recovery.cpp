// End-to-end docking recovery: when the ligand is a carved, rotated piece
// of the receptor, the rotation sweep must prefer the matching rotation.
#include <gtest/gtest.h>

#include "apps/zdock/docking.h"

namespace repro::apps::zdock {
namespace {

TEST(DockingRecovery, CorrectRotationScoresBest) {
  // Score by pure overlap (every occupied receptor voxel +1, no core
  // penalty): the carved fragment's maximum overlap is its own footprint,
  // achieved exactly when the sweep undoes the applied rotation.
  const Shape3 shape = cube(32);
  GridParams overlap_params;
  overlap_params.surface_weight = 1.0;
  overlap_params.core_penalty = 1.0;   // core counts like surface
  const auto receptor = make_chain_molecule(28, 8.0, 404, 2.0);

  // Ligand = a fragment of the receptor, rotated by a known rotation.
  Molecule fragment;
  for (std::size_t i = 8; i < 16; ++i) {
    fragment.atoms.push_back(receptor.atoms[i]);
  }
  const Rotation applied = axis_rotation(1, 1.1);
  const Molecule ligand = rotate(fragment, applied);

  // Candidate set: the inverse of the applied rotation (which restores the
  // fragment's receptor-frame orientation) plus decoys.
  const Rotation inverse = axis_rotation(1, -1.1);
  const std::vector<Rotation> candidates = {
      axis_rotation(0, 0.9),  // decoy
      inverse,                // the right answer
      axis_rotation(2, 2.0),  // decoy
      identity_rotation(),    // decoy (still rotated by `applied`)
  };

  sim::Device dev(sim::geforce_8800_gts());
  DockingEngine engine(dev, shape, overlap_params);
  engine.set_receptor(receptor);
  const auto result = engine.dock(ligand, candidates);

  EXPECT_EQ(result.best.rotation_index, 1u)
      << "expected the inverse rotation to win; scores: "
      << result.per_rotation[0].score << ", " << result.per_rotation[1].score
      << ", " << result.per_rotation[2].score << ", "
      << result.per_rotation[3].score;
}

TEST(DockingRecovery, ScoresAreRotationSensitive) {
  // Sanity: a docking score landscape should not be flat across rotations.
  const Shape3 shape = cube(32);
  const auto receptor = make_chain_molecule(30, 8.0, 7, 2.0);
  const auto ligand = make_chain_molecule(10, 4.0, 8, 2.0);

  sim::Device dev(sim::geforce_8800_gt());
  DockingEngine engine(dev, shape);
  engine.set_receptor(receptor);
  const auto result = engine.dock(ligand, rotation_sweep(6));
  double lo = result.per_rotation[0].score;
  double hi = lo;
  for (const auto& p : result.per_rotation) {
    lo = std::min(lo, p.score);
    hi = std::max(hi, p.score);
  }
  EXPECT_GT(hi - lo, 1.0);
}

}  // namespace
}  // namespace repro::apps::zdock
