// Synthetic docking application: shapes, grids, scoring and the on-card
// rotation sweep.
#include "apps/zdock/docking.h"

#include <gtest/gtest.h>

namespace repro::apps::zdock {
namespace {

TEST(Shape, ChainIsDeterministicAndBounded) {
  const auto a = make_chain_molecule(50, 10.0, 42);
  const auto b = make_chain_molecule(50, 10.0, 42);
  ASSERT_EQ(a.atoms.size(), 50u);
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_EQ(a.atoms[i].x, b.atoms[i].x);
    const auto& at = a.atoms[i];
    EXPECT_LE(at.x * at.x + at.y * at.y + at.z * at.z, 10.0 * 10.0 + 1e-9);
  }
  const auto c = make_chain_molecule(50, 10.0, 43);
  EXPECT_NE(a.atoms[10].x, c.atoms[10].x);
}

TEST(Shape, RotationsPreserveDistances) {
  const auto mol = make_chain_molecule(20, 8.0, 7);
  const auto rot = rotate(mol, axis_rotation(1, 0.7));
  auto dist = [](const Atom& p, const Atom& q) {
    const double dx = p.x - q.x;
    const double dy = p.y - q.y;
    const double dz = p.z - q.z;
    return dx * dx + dy * dy + dz * dz;
  };
  for (std::size_t i = 1; i < mol.atoms.size(); ++i) {
    EXPECT_NEAR(dist(mol.atoms[0], mol.atoms[i]),
                dist(rot.atoms[0], rot.atoms[i]), 1e-9);
  }
}

TEST(Shape, ComposeMatchesSequentialRotation) {
  const auto mol = make_chain_molecule(5, 4.0, 9);
  const auto r1 = axis_rotation(0, 0.3);
  const auto r2 = axis_rotation(2, 1.1);
  const auto seq = rotate(rotate(mol, r1), r2);
  const auto comb = rotate(mol, compose(r1, r2));
  for (std::size_t i = 0; i < mol.atoms.size(); ++i) {
    EXPECT_NEAR(seq.atoms[i].x, comb.atoms[i].x, 1e-9);
    EXPECT_NEAR(seq.atoms[i].y, comb.atoms[i].y, 1e-9);
    EXPECT_NEAR(seq.atoms[i].z, comb.atoms[i].z, 1e-9);
  }
}

TEST(Shape, RotationSweepStartsAtIdentity) {
  const auto rots = rotation_sweep(10);
  ASSERT_EQ(rots.size(), 10u);
  EXPECT_EQ(rots[0], identity_rotation());
}

TEST(Grid, ReceptorHasSurfaceAndCore) {
  // A single fat atom: center voxels are core (penalty), shell is +1.
  Molecule mol;
  mol.atoms.push_back(Atom{0, 0, 0, 6.0});
  const Shape3 shape = cube(32);
  GridParams params;
  const auto grid = rasterize_receptor(mol, shape, params);
  const std::size_t c = shape.at(16, 16, 16);
  EXPECT_FLOAT_EQ(grid[c].re, static_cast<float>(params.core_penalty));
  // A voxel near the boundary of the sphere is surface.
  const std::size_t s = shape.at(16 + 5, 16, 16);
  EXPECT_FLOAT_EQ(grid[s].re, static_cast<float>(params.surface_weight));
  // Far away: empty.
  EXPECT_FLOAT_EQ(grid[shape.at(2, 2, 2)].re, 0.0f);
}

TEST(Grid, LigandIsBinary) {
  const auto mol = make_chain_molecule(10, 5.0, 3);
  const Shape3 shape = cube(32);
  const auto grid = rasterize_ligand(mol, shape);
  std::size_t ones = 0;
  for (const auto& v : grid) {
    EXPECT_TRUE(v.re == 0.0f || v.re == 1.0f);
    EXPECT_EQ(v.im, 0.0f);
    if (v.re == 1.0f) ++ones;
  }
  EXPECT_GT(ones, 10u);  // at least the atom centers
}

TEST(Docking, FftScoreMatchesDirectScore) {
  const Shape3 shape = cube(16);
  const auto receptor_mol = make_chain_molecule(12, 5.0, 21, 1.6);
  const auto ligand_mol = make_chain_molecule(6, 3.0, 22, 1.6);
  const auto rec = rasterize_receptor(receptor_mol, shape);
  const auto lig = rasterize_ligand(ligand_mol, shape);

  sim::Device dev(sim::geforce_8800_gt());
  gpufft::Convolution3D conv(dev, shape);
  conv.set_filter(rec);
  const auto scores = conv.correlate(lig);
  // Spot-check a handful of translations against the direct sum. The
  // correlation volume holds score(-d) at index d.
  for (std::size_t dz : {0u, 3u}) {
    for (std::size_t dx : {0u, 5u, 11u}) {
      const std::size_t ix = (shape.nx - dx) % shape.nx;
      const std::size_t iz = (shape.nz - dz) % shape.nz;
      const double direct = direct_score(rec, lig, shape, dx, 0, dz);
      EXPECT_NEAR(scores[shape.at(ix, 0, iz)].re, direct,
                  1e-2 * (1.0 + std::abs(direct)))
          << "d=(" << dx << ",0," << dz << ")";
    }
  }
}

TEST(Docking, RecoversCarvedLigandPose) {
  // Carve the ligand out of the receptor's own atoms, shift it by a known
  // translation, and check the engine finds a pose at least as good as
  // the planted one.
  const Shape3 shape = cube(32);
  const auto receptor = make_chain_molecule(24, 8.0, 99, 2.0);

  Molecule ligand;
  for (std::size_t i = 0; i < 6; ++i) {
    ligand.atoms.push_back(receptor.atoms[i]);
  }

  sim::Device dev(sim::geforce_8800_gts());
  DockingEngine engine(dev, shape);
  engine.set_receptor(receptor);

  const auto result = engine.dock(ligand, {identity_rotation()});
  // The planted pose (zero translation, where the carved ligand perfectly
  // overlaps its own surface... it overlaps CORE, scoring badly). The
  // engine must instead find a positive surface-contact score somewhere.
  EXPECT_EQ(result.per_rotation.size(), 1u);
  const auto rec_grid = rasterize_receptor(receptor, shape);
  const auto lig_grid = rasterize_ligand(ligand, shape);
  const double reported = result.best.score;
  const double direct = direct_score(rec_grid, lig_grid, shape,
                                     result.best.tx, result.best.ty,
                                     result.best.tz);
  EXPECT_NEAR(reported, direct, 1e-2 * (1.0 + std::abs(direct)));
  // And it is the true argmax over all translations of this rotation.
  double best_direct = -1e30;
  for (std::size_t dz = 0; dz < shape.nz; ++dz) {
    for (std::size_t dy = 0; dy < shape.ny; ++dy) {
      for (std::size_t dx = 0; dx < shape.nx; ++dx) {
        best_direct = std::max(best_direct,
                               direct_score(rec_grid, lig_grid, shape, dx,
                                            dy, dz));
      }
    }
  }
  EXPECT_NEAR(reported, best_direct, 1e-2 * (1.0 + std::abs(best_direct)));
}

TEST(Docking, MultiRotationSweepConfinesTraffic) {
  const Shape3 shape = cube(32);
  const auto receptor = make_chain_molecule(30, 9.0, 5, 2.0);
  const auto ligand = make_chain_molecule(8, 4.0, 6, 2.0);

  sim::Device dev(sim::geforce_8800_gtx());
  DockingEngine engine(dev, shape);
  engine.set_receptor(receptor);
  const auto rots = rotation_sweep(4);
  const auto result = engine.dock(ligand, rots);

  EXPECT_EQ(result.per_rotation.size(), 4u);
  EXPECT_GT(result.device_ms, 0.0);
  // Confinement: uploads are one ligand grid per rotation — in the
  // (default) real pipeline a split half-spectrum grid, (nx/2+1)*ny*nz
  // complex elements, ~half the complex volume — and downloads are only
  // the tiny argmax candidate lists.
  EXPECT_TRUE(engine.uses_real_plans());
  const std::uint64_t volume_bytes = shape.volume() * sizeof(cxf);
  const std::uint64_t grid_bytes =
      (shape.nx / 2 + 1) * shape.ny * shape.nz * sizeof(cxf);
  EXPECT_LT(grid_bytes, volume_bytes * 0.6);
  EXPECT_EQ(result.h2d_bytes, rots.size() * grid_bytes);
  EXPECT_LT(result.d2h_bytes, volume_bytes / 10);
  // Global best is the max over rotations.
  for (const auto& p : result.per_rotation) {
    EXPECT_LE(p.score, result.best.score + 1e-6);
  }
}

TEST(Docking, RealAndComplexPipelinesAgree) {
  // The r2c/c2r engine must report the same poses as the complex one —
  // same translations, same scores to FFT rounding — while uploading
  // roughly half the bytes per rotation.
  const Shape3 shape = cube(32);
  const auto receptor = make_chain_molecule(26, 8.5, 12, 2.0);
  const auto ligand = make_chain_molecule(7, 4.0, 13, 2.0);
  const auto rots = rotation_sweep(3);

  sim::Device dev(sim::geforce_8800_gts());
  DockingEngine real_engine(dev, shape);
  EXPECT_TRUE(real_engine.uses_real_plans());
  real_engine.set_receptor(receptor);
  dev.reset_clock();
  const auto real_result = real_engine.dock(ligand, rots);

  DockingEngine cplx_engine(dev, shape, GridParams{}, /*use_real=*/false);
  EXPECT_FALSE(cplx_engine.uses_real_plans());
  cplx_engine.set_receptor(receptor);
  const auto cplx_result = cplx_engine.dock(ligand, rots);

  ASSERT_EQ(real_result.per_rotation.size(), cplx_result.per_rotation.size());
  for (std::size_t r = 0; r < rots.size(); ++r) {
    const auto& a = real_result.per_rotation[r];
    const auto& b = cplx_result.per_rotation[r];
    EXPECT_EQ(a.tx, b.tx) << "rotation " << r;
    EXPECT_EQ(a.ty, b.ty) << "rotation " << r;
    EXPECT_EQ(a.tz, b.tz) << "rotation " << r;
    EXPECT_NEAR(a.score, b.score, 1e-2 * (1.0 + std::abs(b.score)));
  }
  EXPECT_LT(real_result.h2d_bytes,
            cplx_result.h2d_bytes * 0.6);
}

}  // namespace
}  // namespace repro::apps::zdock
