// Spectral Poisson solver: analytic solutions and GPU/host agreement.
#include "apps/poisson/poisson.h"

#include <gtest/gtest.h>

#include <numbers>

#include "common/metrics.h"
#include "common/rng.h"

namespace repro::apps::poisson {
namespace {

/// f(x,y,z) = sin(2*pi*(ax*x + by*y + cz*z)) sampled on the grid; the
/// exact periodic solution of -lap(u) = f is u = f / (2*pi)^2|k|^2.
std::vector<cxf> sine_mode(Shape3 shape, int a, int b, int c) {
  std::vector<cxf> f(shape.volume());
  for (std::size_t z = 0; z < shape.nz; ++z) {
    for (std::size_t y = 0; y < shape.ny; ++y) {
      for (std::size_t x = 0; x < shape.nx; ++x) {
        const double phase =
            2.0 * std::numbers::pi *
            (a * static_cast<double>(x) / shape.nx +
             b * static_cast<double>(y) / shape.ny +
             c * static_cast<double>(z) / shape.nz);
        f[shape.at(x, y, z)] = {static_cast<float>(std::sin(phase)), 0.0f};
      }
    }
  }
  return f;
}

TEST(Poisson, SpectralSolvesSingleMode) {
  const Shape3 shape = cube(32);
  const int a = 2;
  const int b = 1;
  const int c = 3;
  const auto f = sine_mode(shape, a, b, c);
  const auto u = solve_poisson_host(shape, f, Eigenvalues::Spectral);
  const double k2 = 4.0 * std::numbers::pi * std::numbers::pi *
                    (a * a + b * b + c * c);
  for (std::size_t i = 0; i < u.size(); i += 977) {
    EXPECT_NEAR(u[i].re, f[i].re / k2, 1e-5);
  }
}

TEST(Poisson, GpuMatchesHost) {
  const Shape3 shape = cube(32);
  auto f = random_complex<float>(shape.volume(), 5);
  // Enforce zero mean and real input.
  cxd mean{0, 0};
  for (auto& v : f) {
    v.im = 0.0f;
    mean += cxd{v.re, 0.0};
  }
  const float m = static_cast<float>(mean.re / static_cast<double>(f.size()));
  for (auto& v : f) v.re -= m;

  sim::Device dev(sim::geforce_8800_gts());
  const auto gpu = solve_poisson_gpu(dev, shape, f, Eigenvalues::Discrete);
  const auto host = solve_poisson_host(shape, f, Eigenvalues::Discrete);
  EXPECT_LT(rel_l2_error<float>(gpu, host), 1e-4);
}

TEST(Poisson, RealSolverMatchesComplexSolver) {
  // The r2c/c2r path must reproduce the complex-plan solve on real input
  // (both run on the same device so the registry serves both plan kinds).
  const Shape3 shape = cube(32);
  auto f = random_complex<float>(shape.volume(), 11);
  cxd mean{0, 0};
  for (auto& v : f) {
    v.im = 0.0f;
    mean += cxd{v.re, 0.0};
  }
  const float m = static_cast<float>(mean.re / static_cast<double>(f.size()));
  for (auto& v : f) v.re -= m;
  std::vector<float> fr(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) fr[i] = f[i].re;

  sim::Device dev(sim::geforce_8800_gts());
  for (const auto eig : {Eigenvalues::Spectral, Eigenvalues::Discrete}) {
    const auto real = solve_poisson_gpu_real(dev, shape, fr, eig);
    const auto cplx = solve_poisson_gpu(dev, shape, f, eig);
    std::vector<cxf> rc(real.size());
    for (std::size_t i = 0; i < real.size(); ++i) rc[i] = {real[i], 0.0f};
    std::vector<cxf> cc(cplx.size());
    for (std::size_t i = 0; i < cplx.size(); ++i) cc[i] = {cplx[i].re, 0.0f};
    EXPECT_LT(rel_l2_error<float>(rc, cc), 1e-5);
  }
}

TEST(Poisson, RealSolverLeavesTinyStencilResidual) {
  const Shape3 shape = cube(32);
  const auto f = sine_mode(shape, 1, 2, 0);
  std::vector<float> fr(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) fr[i] = f[i].re;

  sim::Device dev(sim::geforce_8800_gtx());
  const auto u = solve_poisson_gpu_real(dev, shape, fr,
                                        Eigenvalues::Discrete);
  std::vector<cxf> uc(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) uc[i] = {u[i], 0.0f};
  EXPECT_LT(discrete_residual(shape, uc, f), 1e-4);
}

TEST(Poisson, DiscreteEigenvaluesGiveTinyStencilResidual) {
  const Shape3 shape = cube(16);
  const auto f = sine_mode(shape, 1, 2, 0);
  const auto u = solve_poisson_host(shape, f, Eigenvalues::Discrete);
  EXPECT_LT(discrete_residual(shape, u, f), 1e-4);
}

TEST(Poisson, SpectralResidualHasDiscretizationError) {
  // Solving with spectral eigenvalues and measuring with the 7-point
  // stencil leaves the O(h^2) discretization gap — sanity check that the
  // two conventions genuinely differ.
  const Shape3 shape = cube(16);
  const auto f = sine_mode(shape, 3, 0, 0);
  const auto u_spec = solve_poisson_host(shape, f, Eigenvalues::Spectral);
  const auto u_disc = solve_poisson_host(shape, f, Eigenvalues::Discrete);
  EXPECT_GT(discrete_residual(shape, u_spec, f),
            discrete_residual(shape, u_disc, f));
}

TEST(Poisson, SolutionHasZeroMean) {
  const Shape3 shape = cube(16);
  const auto f = sine_mode(shape, 1, 1, 1);
  const auto u = solve_poisson_host(shape, f);
  double mean = 0.0;
  for (const auto& v : u) mean += v.re;
  EXPECT_NEAR(mean / static_cast<double>(u.size()), 0.0, 1e-6);
}

}  // namespace
}  // namespace repro::apps::poisson
