// Correctness and behaviour of the fine-grained X-axis kernel (step 5).
#include "gpufft/fine_kernel.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"

namespace repro::gpufft {
namespace {

struct Run {
  std::vector<cxf> result;
  sim::LaunchResult launch;
};

Run run_fine(std::size_t n, std::size_t count, Direction dir,
             TwiddleSource tw = TwiddleSource::Texture,
             std::uint64_t seed = 1) {
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(n * count);
  auto twd = dev.alloc<cxf>(n);
  const auto roots = make_roots<float>(n, dir);
  dev.h2d(twd, std::span<const cxf>(roots));
  const auto input = random_complex<float>(n * count, seed);
  dev.h2d(data, std::span<const cxf>(input));

  FineKernelParams p;
  p.n = n;
  p.count = count;
  p.dir = dir;
  p.twiddles = tw;
  p.grid_blocks = default_grid_blocks(dev.spec());
  FineFftKernel k(data, data, p, &twd);
  Run r;
  r.launch = dev.launch(k);
  r.result.resize(n * count);
  dev.d2h(std::span<cxf>(r.result), data);
  return r;
}

std::vector<cxf> host_reference(std::span<const cxf> in, std::size_t n,
                                std::size_t count, Direction dir) {
  std::vector<cxf> ref(in.begin(), in.end());
  fft::Plan1D<float> plan(n, dir);
  plan.execute(ref, count);
  return ref;
}

class FineSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FineSizes, MatchesHostPlanForward) {
  const std::size_t n = GetParam();
  const std::size_t count = 32;
  const auto input = random_complex<float>(n * count, n);
  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(n * count);
  auto twd = dev.alloc<cxf>(n);
  const auto roots = make_roots<float>(n, Direction::Forward);
  dev.h2d(twd, std::span<const cxf>(roots));
  dev.h2d(data, std::span<const cxf>(input));
  FineKernelParams p;
  p.n = n;
  p.count = count;
  p.grid_blocks = 8;
  p.threads_per_block =
      static_cast<unsigned>(std::max<std::size_t>(n / 4, 64));
  FineFftKernel k(data, data, p, &twd);
  dev.launch(k);
  std::vector<cxf> out(n * count);
  dev.d2h(std::span<cxf>(out), data);
  const auto ref = host_reference(input, n, count, Direction::Forward);
  EXPECT_LT(rel_l2_error<float>(out, ref), fft_error_bound<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FineSizes,
                         ::testing::Values(16, 32, 64, 128, 256, 512));

TEST(FineKernel, InverseMatchesHost) {
  const auto r = run_fine(256, 64, Direction::Inverse);
  Device dummy(sim::geforce_8800_gtx());
  const auto input = random_complex<float>(256 * 64, 1);
  const auto ref = host_reference(input, 256, 64, Direction::Inverse);
  EXPECT_LT(rel_l2_error<float>(r.result, ref),
            fft_error_bound<float>(256));
}

TEST(FineKernel, AllTwiddleSourcesAgree) {
  const std::size_t n = 256;
  const std::size_t count = 16;
  std::vector<std::vector<cxf>> results;
  for (TwiddleSource tw :
       {TwiddleSource::Registers, TwiddleSource::Constant,
        TwiddleSource::Texture, TwiddleSource::Recompute}) {
    results.push_back(run_fine(n, count, Direction::Forward, tw, 7).result);
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(rel_l2_error<float>(results[i], results[0]), 1e-5)
        << "variant " << i;
  }
}

TEST(FineKernel, GlobalAccessesFullyCoalesced) {
  const auto r = run_fine(256, 4096, Direction::Forward);
  EXPECT_GT(r.launch.coalesced_fraction, 0.99);
}

TEST(FineKernel, PaddingAvoidsBankConflicts) {
  // With the paper's padded exchange the kernel must be close to the
  // memory roofline, not serialized on shared memory.
  const auto r = run_fine(256, 8192, Direction::Forward);
  EXPECT_TRUE(r.launch.compute_ms < 2.5 * r.launch.mem_ms);
}

TEST(FineKernel, Table8ScaleGflops) {
  // 65536 x 256-point on the GTX: paper reports 122 GFLOPS / 5.52 ms.
  // Check the simulated kernel lands in the right regime (3-9 ms).
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(65536ull * 256);
  auto twd = dev.alloc<cxf>(256);
  const auto roots = make_roots<float>(256, Direction::Forward);
  dev.h2d(twd, std::span<const cxf>(roots));
  FineKernelParams p;
  p.n = 256;
  p.count = 65536;
  p.grid_blocks = default_grid_blocks(dev.spec());
  FineFftKernel k(data, data, p, &twd);
  const auto r = dev.launch(k);
  EXPECT_GT(r.total_ms, 3.0);
  EXPECT_LT(r.total_ms, 9.0);
}

TEST(FineKernel, RejectsBadGeometry) {
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(1024);
  FineKernelParams p;
  p.n = 24;  // not a power of two
  p.count = 1;
  p.twiddles = TwiddleSource::Registers;
  EXPECT_THROW(FineFftKernel(data, data, p), Error);
}

TEST(FineKernel, ShmemFootprintMatchesPaperScale) {
  // n floats + padding: ~1.06 KB for a 256-point transform.
  EXPECT_EQ(FineFftKernel::shmem_bytes_per_transform(256),
            (255 + 255 / 16 + 1) * 4u);
  EXPECT_LT(FineFftKernel::shmem_bytes_per_transform(256), 1100u);
}

}  // namespace
}  // namespace repro::gpufft
