// Property tests of the on-card correlation engine.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "gpufft/convolution.h"

namespace repro::gpufft {
namespace {

TEST(ConvolutionProperties, DeltaFilterIsIdentity) {
  // Correlating against delta(0) returns the signal itself.
  const Shape3 shape = cube(16);
  std::vector<cxf> delta(shape.volume());
  delta[0] = {1.0f, 0.0f};
  const auto signal = random_complex<float>(shape.volume(), 9);

  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, shape);
  conv.set_filter(delta);
  const auto out = conv.correlate(signal);
  EXPECT_LT(rel_l2_error<float>(out, signal), 1e-4);
}

TEST(ConvolutionProperties, ShiftedDeltaShiftsTheSignal) {
  const Shape3 shape = cube(16);
  std::vector<cxf> delta(shape.volume());
  delta[shape.at(3, 0, 0)] = {1.0f, 0.0f};
  const auto signal = random_complex<float>(shape.volume(), 10);

  Device dev(sim::geforce_8800_gts());
  Convolution3D conv(dev, shape);
  conv.set_filter(delta);
  const auto out = conv.correlate(signal);
  // out[d] = sum_t s[t+d] conj(f[t]) = s[d + (3,0,0)].
  for (std::size_t z = 0; z < shape.nz; z += 5) {
    for (std::size_t x = 0; x < shape.nx; ++x) {
      const auto expect = signal[shape.at((x + 3) % shape.nx, 0, z)];
      const auto got = out[shape.at(x, 0, z)];
      EXPECT_NEAR(got.re, expect.re, 1e-3f);
      EXPECT_NEAR(got.im, expect.im, 1e-3f);
    }
  }
}

TEST(ConvolutionProperties, LinearInTheSignal) {
  const Shape3 shape = cube(16);
  const auto filter = random_complex<float>(shape.volume(), 11);
  const auto a = random_complex<float>(shape.volume(), 12);
  const auto b = random_complex<float>(shape.volume(), 13);
  std::vector<cxf> sum(shape.volume());
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + b[i];

  Device dev(sim::geforce_8800_gtx());
  Convolution3D conv(dev, shape);
  conv.set_filter(filter);
  const auto ca = conv.correlate(a);
  const auto cb = conv.correlate(b);
  const auto cs = conv.correlate(sum);
  std::vector<cxf> expect(shape.volume());
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = ca[i] + cb[i];
  EXPECT_LT(rel_l2_error<float>(cs, expect), 1e-3);
}

TEST(ConvolutionProperties, FilterSwapChangesResults) {
  // set_filter must actually replace the resident spectrum.
  const Shape3 shape = cube(16);
  const auto f1 = random_complex<float>(shape.volume(), 14);
  const auto f2 = random_complex<float>(shape.volume(), 15);
  const auto signal = random_complex<float>(shape.volume(), 16);

  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, shape);
  conv.set_filter(f1);
  const auto out1 = conv.correlate(signal);
  conv.set_filter(f2);
  const auto out2 = conv.correlate(signal);
  EXPECT_GT(rel_l2_error<float>(out1, out2), 1e-2);
}

TEST(ConvolutionProperties, RequiresFilterBeforeUse) {
  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, cube(16));
  const auto signal = random_complex<float>(16 * 16 * 16, 17);
  EXPECT_THROW(conv.correlate(signal), Error);
}

}  // namespace
}  // namespace repro::gpufft
