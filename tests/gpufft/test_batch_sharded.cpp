// Batched multi-volume execution: the dealt batch plan
// (BatchShardedFft3DPlan), the pipelined sharded batch, bit-identity of
// every schedule against the serial reference, the closed-form batch
// models and the deal-vs-shard decision rule, and mid-batch DeviceLost
// recovery for both paths.
#include "gpufft/batch_sharded.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "gpufft/registry.h"
#include "gpufft/sharded.h"
#include "sim/fault.h"

namespace repro::gpufft {
namespace {

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

std::vector<std::vector<cxf>> make_volumes(std::size_t count, std::size_t n,
                                           std::uint64_t seed0) {
  std::vector<std::vector<cxf>> v;
  v.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    v.push_back(random_complex<float>(n * n * n, seed0 + k));
  }
  return v;
}

std::vector<std::span<cxf>> spans_of(std::vector<std::vector<cxf>>& v) {
  std::vector<std::span<cxf>> s;
  s.reserve(v.size());
  for (auto& x : v) s.emplace_back(x);
  return s;
}

/// Reference results: each volume through the serial sharded schedule on
/// a fresh group (the PR 3 behavior every batch path must reproduce).
std::vector<std::vector<cxf>> serial_reference(
    std::size_t n, std::size_t shards, Direction dir,
    const std::vector<std::vector<cxf>>& inputs) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, dir);
  std::vector<std::vector<cxf>> out = inputs;
  for (auto& v : out) plan.execute(std::span<cxf>(v));
  return out;
}

TEST(BatchSharded, DealtBatchBitIdenticalToShardedAnyGroupSize) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto inputs = make_volumes(3, n, 101);
  const auto ref = serial_reference(n, shards, Direction::Forward, inputs);
  // Dealing has no divisibility constraints: 3 members neither divides
  // shards=4 nor n/shards=8, yet results must stay bit-identical.
  for (const std::size_t devices : {1u, 2u, 3u}) {
    sim::DeviceGroup group(devices, sim::geforce_8800_gts());
    BatchShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    auto data = inputs;
    auto spans = spans_of(data);
    const auto bt = plan.execute_batch(spans);
    EXPECT_EQ(bt.volume_done_ms.size(), 3u);
    EXPECT_GT(bt.makespan_ms, 0.0);
    EXPECT_GT(bt.volumes_per_sec(), 0.0);
    for (std::size_t k = 0; k < data.size(); ++k) {
      EXPECT_TRUE(bit_identical(data[k], ref[k]))
          << "devices=" << devices << " volume=" << k;
      EXPECT_EQ(static_cast<std::size_t>(bt.volume_member[k]), k % devices);
    }
  }
}

TEST(BatchSharded, PipelinedBatchBitIdenticalToSerialAcrossGroups) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto inputs = make_volumes(3, n, 202);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = serial_reference(n, shards, dir, inputs);
    std::vector<std::vector<sim::GpuSpec>> fleets = {
        {sim::geforce_8800_gts()},
        {sim::geforce_8800_gts(), sim::geforce_8800_gts()},
        std::vector<sim::GpuSpec>(4, sim::geforce_8800_gts()),
        {sim::geforce_8800_gt(), sim::geforce_8800_gtx()},
    };
    for (auto& specs : fleets) {
      sim::DeviceGroup group(specs);
      ShardedFft3DPlan plan(group, n, shards, dir);
      auto data = inputs;
      auto spans = spans_of(data);
      const auto bt = plan.execute_batch(spans, BatchMode::Pipelined);
      EXPECT_EQ(bt.volume_done_ms.size(), 3u);
      for (std::size_t k = 0; k < data.size(); ++k) {
        EXPECT_TRUE(bit_identical(data[k], ref[k]))
            << "fleet=" << specs.size() << " volume=" << k;
      }
      // Completion offsets are positive and ordered with the schedule.
      for (std::size_t k = 0; k < bt.volume_done_ms.size(); ++k) {
        EXPECT_GT(bt.volume_done_ms[k], 0.0);
        EXPECT_LE(bt.volume_done_ms[k], bt.makespan_ms + 1e-9);
      }
      EXPECT_GT(bt.exchange_occupancy(), 0.0);
      EXPECT_GT(bt.compute_occupancy(), 0.0);
    }
  }
}

TEST(BatchSharded, PipelinedImprovesMakespanOnDualEngineCards) {
  // The acceptance configuration scaled to test size: a 4-card group of
  // 2-DMA GT200 cards, where the serial schedule leaves the bridge idle
  // between volumes and the pipeline hides the exchange under the next
  // volume's phase 1.
  const std::size_t n = 64;
  const std::size_t shards = 8;
  auto inputs = make_volumes(4, n, 303);
  sim::DeviceGroup group(4, sim::geforce_gtx_280());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);

  auto serial_data = inputs;
  auto serial_spans = spans_of(serial_data);
  const auto serial = plan.execute_batch(serial_spans, BatchMode::Serial);

  auto pipe_data = inputs;
  auto pipe_spans = spans_of(pipe_data);
  const auto piped = plan.execute_batch(pipe_spans, BatchMode::Pipelined);

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_TRUE(bit_identical(pipe_data[k], serial_data[k])) << k;
  }
  const double gain = serial.makespan_ms / piped.makespan_ms;
  EXPECT_GE(gain, 1.2) << "serial=" << serial.makespan_ms
                       << " pipelined=" << piped.makespan_ms;
}

TEST(BatchSharded, BatchModelTracksPipelinedScheduler) {
  const std::size_t n = 64;
  const std::size_t shards = 8;
  for (const auto& spec :
       {sim::geforce_8800_gts(), sim::geforce_gtx_280()}) {
    for (const std::size_t devices : {2u, 4u}) {
      sim::DeviceGroup group(devices, spec);
      const auto& derated = group.device(0).spec();
      const auto phases =
          probe_shard_phases(derated, n, shards, Direction::Forward);
      ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
      auto data = make_volumes(4, n, 404);
      auto spans = spans_of(data);
      const auto bt = plan.execute_batch(spans, BatchMode::Pipelined);
      const double model = sharded_batch_model_ms(
          phases, derated, n, shards, devices, 4, BatchMode::Pipelined);
      const double err =
          std::abs(model - bt.makespan_ms) / bt.makespan_ms;
      EXPECT_LT(err, 0.05) << spec.name << " x" << devices
                           << " model=" << model
                           << " measured=" << bt.makespan_ms;
    }
  }
}

TEST(BatchSharded, ModelPredictsDealVsShardCrossover) {
  // The planner rule: sharding wins while the batch is smaller than the
  // fleet (dealing idles cards), dealing wins once every card has a
  // whole volume. Both model sides must track the scheduler to <= 5% and
  // the predicted winner must match the measured one at every batch size.
  const std::size_t n = 64;
  const std::size_t shards = 8;
  const std::size_t devices = 4;
  sim::DeviceGroup group(devices, sim::geforce_8800_gts());
  const auto& derated = group.device(0).spec();
  const auto phases =
      probe_shard_phases(derated, n, shards, Direction::Forward);
  ShardedFft3DPlan shard_plan(group, n, shards, Direction::Forward);
  BatchShardedFft3DPlan deal_plan(group, n, shards, Direction::Forward);

  for (const std::size_t batch : {1u, 2u, 4u, 8u}) {
    auto shard_data = make_volumes(batch, n, 500 + batch);
    auto shard_spans = spans_of(shard_data);
    const auto sharded =
        shard_plan.execute_batch(shard_spans, BatchMode::Pipelined);

    auto deal_data = make_volumes(batch, n, 500 + batch);
    auto deal_spans = spans_of(deal_data);
    const auto dealt = deal_plan.execute_batch(deal_spans);

    const BatchChoice c =
        choose_batch_strategy(phases, derated, n, shards, devices, batch);
    const double deal_err =
        std::abs(c.deal_ms - dealt.makespan_ms) / dealt.makespan_ms;
    const double shard_err =
        std::abs(c.shard_ms - sharded.makespan_ms) / sharded.makespan_ms;
    EXPECT_LT(deal_err, 0.05) << "batch=" << batch;
    EXPECT_LT(shard_err, 0.05) << "batch=" << batch;

    // Winner prediction: only meaningful when the measured gap is
    // decisive. A homogeneous bridge-bound fleet moves the same bytes
    // either way, so large batches land within noise of a tie — either
    // choice is right there.
    const double gap = std::abs(dealt.makespan_ms - sharded.makespan_ms);
    if (gap > 0.02 * std::min(dealt.makespan_ms, sharded.makespan_ms)) {
      const BatchStrategy measured =
          dealt.makespan_ms <= sharded.makespan_ms ? BatchStrategy::Deal
                                                   : BatchStrategy::Shard;
      EXPECT_EQ(c.strategy, measured)
          << "batch=" << batch << " deal=" << dealt.makespan_ms
          << " shard=" << sharded.makespan_ms;
    }
    if (batch == 1) {
      // A single volume must shard: dealing leaves 3 of 4 cards idle.
      EXPECT_EQ(c.strategy, BatchStrategy::Shard);
      EXPECT_LT(sharded.makespan_ms, dealt.makespan_ms);
    }
  }
}

TEST(BatchSharded, DealWinsWhenShardingCannotUseEveryCard) {
  // 3 cards, 8 shards: the sharded plan falls back to a 2-member prefix
  // (3 divides neither 8 nor n/shards), while dealing keeps all three
  // busy — so the crossover is decisive, not a bridge-bound tie.
  const std::size_t n = 64;
  const std::size_t shards = 8;
  const std::size_t devices = 3;
  sim::DeviceGroup group(devices, sim::geforce_8800_gts());
  const auto& derated = group.device(0).spec();
  const auto phases =
      probe_shard_phases(derated, n, shards, Direction::Forward);
  ShardedFft3DPlan shard_plan(group, n, shards, Direction::Forward);
  BatchShardedFft3DPlan deal_plan(group, n, shards, Direction::Forward);

  for (const std::size_t batch : {1u, 6u}) {
    auto shard_data = make_volumes(batch, n, 900 + batch);
    auto shard_spans = spans_of(shard_data);
    const auto sharded =
        shard_plan.execute_batch(shard_spans, BatchMode::Pipelined);
    auto deal_data = make_volumes(batch, n, 900 + batch);
    auto deal_spans = spans_of(deal_data);
    const auto dealt = deal_plan.execute_batch(deal_spans);

    const BatchChoice c =
        choose_batch_strategy(phases, derated, n, shards, devices, batch);
    EXPECT_LT(std::abs(c.deal_ms - dealt.makespan_ms) / dealt.makespan_ms,
              0.05)
        << "batch=" << batch;
    EXPECT_LT(
        std::abs(c.shard_ms - sharded.makespan_ms) / sharded.makespan_ms,
        0.05)
        << "batch=" << batch;
    const BatchStrategy measured =
        dealt.makespan_ms <= sharded.makespan_ms ? BatchStrategy::Deal
                                                 : BatchStrategy::Shard;
    EXPECT_EQ(c.strategy, measured)
        << "batch=" << batch << " deal=" << dealt.makespan_ms
        << " shard=" << sharded.makespan_ms;
    EXPECT_EQ(c.strategy,
              batch == 1 ? BatchStrategy::Shard : BatchStrategy::Deal);
  }
}

/// DeviceLost occurrences on `victim` for one full dealt/pipelined batch,
/// measured with a disarmed injector (counting matches an armed run up to
/// the first fire).
template <typename RunBatch>
std::uint64_t occurrences_for(sim::DeviceGroup& group, std::size_t victim,
                              RunBatch&& run) {
  auto& inj = group.faults(victim);
  inj.disarm_all();
  run();
  return inj.occurrences(sim::FaultKind::DeviceLost);
}

TEST(BatchSharded, PipelinedBatchSurvivesMidStreamDeviceLost) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto inputs = make_volumes(4, n, 606);
  const auto ref = serial_reference(n, shards, Direction::Forward, inputs);

  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  auto count_data = inputs;
  auto count_spans = spans_of(count_data);
  const std::uint64_t total = occurrences_for(group, 2, [&] {
    plan.execute_batch(count_spans, BatchMode::Pipelined);
  });
  ASSERT_GT(total, 0u);

  // Lose member 2 roughly mid-batch: queued volumes must still complete,
  // bit-identically, on the survivors.
  sim::DeviceGroup fresh(4, sim::geforce_8800_gts());
  fresh.faults(2).arm(sim::FaultKind::DeviceLost, total / 2);
  ShardedFft3DPlan fplan(fresh, n, shards, Direction::Forward);
  const auto before = recovery_counters().device_lost_failovers;
  auto data = inputs;
  auto spans = spans_of(data);
  const auto bt = fplan.execute_batch(spans, BatchMode::Pipelined);
  EXPECT_EQ(bt.volume_done_ms.size(), 4u);
  EXPECT_GT(recovery_counters().device_lost_failovers, before);
  EXPECT_EQ(fresh.alive_count(), 3u);
  for (std::size_t k = 0; k < data.size(); ++k) {
    EXPECT_TRUE(bit_identical(data[k], ref[k])) << "volume=" << k;
  }
}

TEST(BatchSharded, DealtBatchSurvivesMidStreamDeviceLost) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto inputs = make_volumes(4, n, 707);
  const auto ref = serial_reference(n, shards, Direction::Forward, inputs);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  BatchShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  auto count_data = inputs;
  auto count_spans = spans_of(count_data);
  const std::uint64_t total = occurrences_for(
      group, 1, [&] { plan.execute_batch(count_spans); });
  ASSERT_GT(total, 0u);

  sim::DeviceGroup fresh(2, sim::geforce_8800_gts());
  fresh.faults(1).arm(sim::FaultKind::DeviceLost, total / 2);
  BatchShardedFft3DPlan fplan(fresh, n, shards, Direction::Forward);
  const auto before = recovery_counters().device_lost_failovers;
  auto data = inputs;
  auto spans = spans_of(data);
  const auto bt = fplan.execute_batch(spans);
  EXPECT_GT(recovery_counters().device_lost_failovers, before);
  EXPECT_EQ(fresh.alive_count(), 1u);
  for (std::size_t k = 0; k < data.size(); ++k) {
    EXPECT_TRUE(bit_identical(data[k], ref[k])) << "volume=" << k;
    // Every volume ran (or re-ran) on an alive member.
    if (k > 0) {
      EXPECT_EQ(bt.volume_member[k], 0);
    }
  }
}

TEST(BatchSharded, RegistryFrontDoorServesBatchShardedPlans) {
  const std::size_t n = 32;
  sim::DeviceGroup group(3, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::batch_sharded3d(n, 4, Direction::Forward);
  auto plan = reg.get_or_create(desc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->desc().kind, PlanKind::BatchSharded3D);

  auto inputs = make_volumes(2, n, 808);
  const auto ref = serial_reference(n, 4, Direction::Forward, inputs);
  auto spans = spans_of(inputs);
  const auto steps = plan->execute_batch_host(spans);
  EXPECT_FALSE(steps.empty());
  EXPECT_GT(plan->last_total_ms(), 0.0);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_TRUE(bit_identical(inputs[k], ref[k])) << k;
  }
  auto again = reg.get_or_create(desc);
  EXPECT_EQ(plan.get(), again.get());
  EXPECT_GE(reg.hits(), 1u);
}

}  // namespace
}  // namespace repro::gpufft
