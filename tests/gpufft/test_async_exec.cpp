// Async plan execution: default-stream regression locks (bit-for-bit
// against the synchronous path), execute_async equivalence, and the
// overlapped host-batch pipeline's speedup on a dual-copy-engine card.
#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"
#include "fft/plan.h"
#include "gpufft/outofcore.h"
#include "gpufft/plan.h"
#include "sim/stream.h"

namespace repro::gpufft {
namespace {

struct RunResult {
  std::vector<cxf> out;
  std::vector<StepTiming> steps;
  double elapsed_ms{};
};

RunResult run_sync(const std::vector<cxf>& input, Shape3 shape,
                   const sim::GpuSpec& spec) {
  Device dev(spec);
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  RunResult r;
  r.steps = plan.execute(data);
  r.out.resize(shape.volume());
  dev.d2h(std::span<cxf>(r.out), data);
  r.elapsed_ms = dev.elapsed_ms();
  return r;
}

RunResult run_async(const std::vector<cxf>& input, Shape3 shape,
                    const sim::GpuSpec& spec) {
  Device dev(spec);
  auto data = dev.alloc<cxf>(shape.volume());
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  RunResult r;
  {
    sim::Stream stream(dev);
    dev.h2d_async(data, std::span<const cxf>(input), stream);
    r.steps = plan.execute_async(data, stream);
    r.out.resize(shape.volume());
    dev.d2h_async(std::span<cxf>(r.out), data, stream);
  }
  r.elapsed_ms = dev.elapsed_ms();
  return r;
}

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

TEST(AsyncExec, DefaultStreamRunMatchesOracle16) {
  // Regression lock: with streams in the codebase, the plain synchronous
  // path still computes the right transform.
  const Shape3 shape = cube(16);
  const auto input = random_complex<float>(shape.volume(), 21);
  const auto r = run_sync(input, shape, sim::geforce_8800_gts());
  const auto ref = fft::dft_3d<float>(input, shape, Direction::Forward);
  EXPECT_LT(rel_l2_error<float>(r.out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(AsyncExec, DefaultStreamRunMatchesHostPlan64) {
  const Shape3 shape = cube(64);
  const auto input = random_complex<float>(shape.volume(), 22);
  const auto r = run_sync(input, shape, sim::geforce_8800_gts());
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, Direction::Forward);
  host.execute(ref);
  EXPECT_LT(rel_l2_error<float>(r.out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(AsyncExec, AsyncMatchesSyncBitForBitWithSameStepTimes) {
  // execute_async must be a pure scheduling change: identical output
  // bits, identical per-step durations, identical makespan for a single
  // stream (nothing to overlap with).
  const Shape3 shape = cube(64);
  const auto input = random_complex<float>(shape.volume(), 23);
  const auto sync = run_sync(input, shape, sim::geforce_8800_gt());
  const auto async = run_async(input, shape, sim::geforce_8800_gt());

  EXPECT_TRUE(bit_identical(sync.out, async.out));
  ASSERT_EQ(sync.steps.size(), async.steps.size());
  for (std::size_t i = 0; i < sync.steps.size(); ++i) {
    EXPECT_EQ(sync.steps[i].name, async.steps[i].name);
    EXPECT_DOUBLE_EQ(sync.steps[i].ms, async.steps[i].ms);
  }
  EXPECT_NEAR(sync.elapsed_ms, async.elapsed_ms, 1e-9);
}

TEST(AsyncExec, BatchHostOverlapsOnDualCopyEngineCard) {
  // Acceptance: 8 x 128^3 volumes double-buffered through two streams on
  // a 2-DMA-engine card beat the synchronous schedule by >= 1.3x.
  const Shape3 shape = cube(128);
  const std::size_t jobs = 8;
  std::vector<std::vector<cxf>> volumes;
  std::vector<std::vector<cxf>> batch_volumes;
  for (std::size_t i = 0; i < jobs; ++i) {
    volumes.push_back(random_complex<float>(shape.volume(), 100 + i));
    batch_volumes.push_back(volumes.back());
  }

  // Synchronous reference: each volume staged and executed serially.
  Device dev_sync(sim::geforce_gtx_280());
  BandwidthFft3D plan_sync(dev_sync, shape, Direction::Forward);
  const double t0 = dev_sync.elapsed_ms();
  for (auto& v : volumes) plan_sync.execute_host(std::span<cxf>(v));
  const double sync_ms = dev_sync.elapsed_ms() - t0;

  // Overlapped batch.
  Device dev_async(sim::geforce_gtx_280());
  BandwidthFft3D plan_async(dev_async, shape, Direction::Forward);
  std::vector<std::span<cxf>> spans;
  for (auto& v : batch_volumes) spans.emplace_back(v);
  plan_async.execute_batch_host(
      std::span<const std::span<cxf>>(spans.data(), spans.size()));
  const double overlap_ms = plan_async.last_total_ms();

  EXPECT_GT(overlap_ms, 0.0);
  EXPECT_GE(sync_ms / overlap_ms, 1.3);
  // The pipeline reorders only the timeline, never the math.
  for (std::size_t i = 0; i < jobs; ++i) {
    EXPECT_TRUE(bit_identical(volumes[i], batch_volumes[i]));
  }
}

TEST(AsyncExec, BatchHostSingleVolumeDegeneratesToExecuteHost) {
  const Shape3 shape = cube(32);
  auto a = random_complex<float>(shape.volume(), 31);
  auto b = a;

  Device dev(sim::geforce_8800_gt());
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  plan.execute_host(std::span<cxf>(a));

  std::span<cxf> span_b(b);
  plan.execute_batch_host(std::span<const std::span<cxf>>(&span_b, 1));
  EXPECT_TRUE(bit_identical(a, b));
}

TEST(AsyncExec, OutOfCoreStreamingShortensTheMakespan) {
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, 41);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host(cube(n), Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_gtx_280());
  OutOfCoreFft3D plan(dev, n, 4, Direction::Forward);
  const auto t = plan.execute(std::span<cxf>(data));
  // Still correct under the streamed schedule...
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(n * n * n));
  // ...and the overlap is real: the wall-clock beats the serial sum of
  // the Table 12 buckets, but can't beat the transfer totals both ways.
  EXPECT_GT(t.makespan_ms, 0.0);
  EXPECT_LT(t.makespan_ms, 0.97 * t.total_ms());
  EXPECT_GE(t.makespan_ms,
            std::max(t.h2d1_ms + t.h2d2_ms, t.d2h1_ms + t.d2h2_ms) - 1e-9);
  EXPECT_EQ(plan.last_total_ms(), t.makespan_ms);
}

}  // namespace
}  // namespace repro::gpufft
