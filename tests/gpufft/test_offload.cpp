#include "gpufft/offload.h"

#include <gtest/gtest.h>

namespace repro::gpufft {
namespace {

TEST(Offload, ZeroJobsIsAllZeroTimings) {
  // No jobs: no fill, no drain, no negative terms from the n-1 algebra.
  const auto t = offload_pipeline(10.0, 20.0, 10.0, 0);
  EXPECT_DOUBLE_EQ(t.sync_ms, 0.0);
  EXPECT_DOUBLE_EQ(t.overlap_1dma_ms, 0.0);
  EXPECT_DOUBLE_EQ(t.overlap_2dma_ms, 0.0);
  EXPECT_DOUBLE_EQ(t.speedup_1dma(), 0.0);
  EXPECT_DOUBLE_EQ(t.speedup_2dma(), 0.0);
  EXPECT_DOUBLE_EQ(schedule_offload(10.0, 20.0, 10.0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(schedule_offload(10.0, 20.0, 10.0, 0, 2), 0.0);
}

TEST(Offload, SingleJobHasNoOverlapWin) {
  const auto t = offload_pipeline(10.0, 20.0, 10.0, 1);
  EXPECT_DOUBLE_EQ(t.sync_ms, 40.0);
  EXPECT_DOUBLE_EQ(t.overlap_1dma_ms, 40.0);
  EXPECT_DOUBLE_EQ(t.overlap_2dma_ms, 40.0);
  // The scheduler agrees: one job is strictly sequential on any card.
  EXPECT_NEAR(schedule_offload(10.0, 20.0, 10.0, 1, 1), 40.0, 1e-9);
  EXPECT_NEAR(schedule_offload(10.0, 20.0, 10.0, 1, 2), 40.0, 1e-9);
}

TEST(Offload, ComputeBoundPipelineHidesTransfers) {
  // fft dominates: steady state is one fft per job.
  const auto t = offload_pipeline(5.0, 30.0, 5.0, 10);
  EXPECT_DOUBLE_EQ(t.sync_ms, 400.0);
  // 1 DMA: 5 + 9*max(10,30) + max(30,5) + 5 = 5+270+30+5 = 310.
  EXPECT_DOUBLE_EQ(t.overlap_1dma_ms, 310.0);
  // 2 DMA: 5 + 30 + 9*30 + 5 = 310.
  EXPECT_DOUBLE_EQ(t.overlap_2dma_ms, 310.0);
  EXPECT_GT(t.speedup_1dma(), 1.25);
}

TEST(Offload, TransferBoundPipelineIsCopyLimited) {
  // Copies dominate (the paper's Table 10 regime).
  const auto t = offload_pipeline(25.0, 30.0, 25.0, 8);
  // 1 DMA: copies (50/job) exceed fft (30): steady state 50.
  EXPECT_NEAR(t.overlap_1dma_ms, 25.0 + 7 * 50.0 + 30.0 + 25.0, 1e-9);
  // 2 DMA: slowest stage is fft (30).
  EXPECT_NEAR(t.overlap_2dma_ms, 25.0 + 30.0 + 7 * 30.0 + 25.0, 1e-9);
  EXPECT_LT(t.overlap_2dma_ms, t.overlap_1dma_ms);
}

TEST(Offload, OverlapNeverSlowerThanSync) {
  for (double h : {1.0, 10.0, 100.0}) {
    for (double f : {1.0, 10.0, 100.0}) {
      for (double d : {1.0, 10.0, 100.0}) {
        for (std::size_t n : {1u, 2u, 7u, 64u}) {
          const auto t = offload_pipeline(h, f, d, n);
          EXPECT_LE(t.overlap_1dma_ms, t.sync_ms + 1e-9);
          EXPECT_LE(t.overlap_2dma_ms, t.overlap_1dma_ms + 1e-9);
          EXPECT_GE(t.overlap_2dma_ms,
                    f * static_cast<double>(n) - 1e-9);  // compute floor
        }
      }
    }
  }
}

TEST(Offload, MeasuredPhasesMatchTable10Regime) {
  Device dev(sim::geforce_8800_gts());
  const auto t = measure_offload(dev, cube(128), 16);
  EXPECT_GT(t.h2d_ms, 0.0);
  EXPECT_GT(t.fft_ms, 0.0);
  EXPECT_GT(t.d2h_ms, 0.0);
  // At 128^3 on PCIe 2.0, transfers and compute are of the same order, so
  // overlap buys a solid factor.
  EXPECT_GT(t.speedup_1dma(), 1.2);
  EXPECT_LT(t.speedup_1dma(), 3.0);
  // The scheduler replay agrees with the algebra: its makespan sits
  // between the engine lower bounds and the closed form (the closed form
  // over-counts fill/drain slightly), and the steady-state per-job rate
  // matches within 1%.
  EXPECT_GT(t.sched_1dma_ms, 0.0);
  EXPECT_LE(t.sched_1dma_ms, t.overlap_1dma_ms + 1e-9);
  EXPECT_LE(t.sched_2dma_ms, t.sched_1dma_ms + 1e-9);
  EXPECT_NEAR(t.sched_rate_1dma_ms, t.algebra_rate_1dma_ms(),
              0.01 * t.algebra_rate_1dma_ms());
  EXPECT_NEAR(t.sched_rate_2dma_ms, t.algebra_rate_2dma_ms(),
              0.01 * t.algebra_rate_2dma_ms());
}

TEST(Offload, SchedulerMatchesAlgebraRateAcrossRegimes) {
  // Sweep compute-bound, upload-bound, download-bound, and balanced
  // phase mixes: the event-driven replay's steady-state per-job period
  // must match the closed-form bound within 1% in every regime.
  const double mixes[][3] = {
      {5.0, 30.0, 5.0},    // compute-bound
      {30.0, 5.0, 10.0},   // upload-bound
      {10.0, 5.0, 30.0},   // download-bound
      {20.0, 20.0, 20.0},  // balanced
      {25.0, 30.0, 25.0},  // copy-bound on one engine, fft-bound on two
  };
  const std::size_t n = 16;
  for (const auto& m : mixes) {
    const auto t = offload_pipeline(m[0], m[1], m[2], n);
    for (int engines : {1, 2}) {
      const double total = schedule_offload(m[0], m[1], m[2], n, engines);
      const double twice =
          schedule_offload(m[0], m[1], m[2], 2 * n, engines);
      const double rate = (twice - total) / static_cast<double>(n);
      const double bound = engines == 1 ? t.algebra_rate_1dma_ms()
                                        : t.algebra_rate_2dma_ms();
      EXPECT_NEAR(rate, bound, 0.01 * bound)
          << "engines=" << engines << " mix=(" << m[0] << "," << m[1]
          << "," << m[2] << ")";
      // Makespan sanity: never below the engine-work lower bound, never
      // above the serial schedule.
      EXPECT_GE(total, static_cast<double>(n) * bound - 1e-9);
      EXPECT_LE(total, t.sync_ms + 1e-9);
    }
  }
}

}  // namespace
}  // namespace repro::gpufft
