// Multi-device sharded 3-D FFT: bit-exact equivalence with the
// single-device out-of-core plan, the pinned degenerate group-of-one
// timeline, exchange accounting, the closed-form pipeline model, and the
// registry front door.
#include "gpufft/sharded.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/real3d.h"
#include "gpufft/registry.h"
#include "sim/topology/pcie_tree.h"
#include "sim/topology/peer_mesh.h"
#include "sim/topology/torus2d.h"

namespace repro::gpufft {
namespace {

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

/// The single-device reference: the registry's out-of-core plan with the
/// same decimation factor (the arithmetic the sharded plan distributes).
std::vector<cxf> out_of_core_reference(std::size_t n, std::size_t shards,
                                       Direction dir,
                                       const std::vector<cxf>& input) {
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::out_of_core(n, shards, dir));
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  return data;
}

std::vector<cxf> sharded_run(sim::DeviceGroup& group, std::size_t n,
                             std::size_t shards, Direction dir,
                             const std::vector<cxf>& input) {
  ShardedFft3DPlan plan(group, n, shards, dir);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  return data;
}

TEST(Sharded, BitIdenticalToOutOfCore64AllDeviceCounts) {
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 21);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    for (const std::size_t devices : {1u, 2u, 4u}) {
      sim::DeviceGroup group(devices, sim::geforce_8800_gts());
      const auto out = sharded_run(group, n, shards, dir, input);
      EXPECT_TRUE(bit_identical(out, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
  }
}

TEST(Sharded, BitIdenticalToOutOfCore128AllDeviceCounts) {
  const std::size_t n = 128;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 22);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    for (const std::size_t devices : {1u, 2u, 4u}) {
      sim::DeviceGroup group(devices, sim::geforce_8800_gts());
      const auto out = sharded_run(group, n, shards, dir, input);
      EXPECT_TRUE(bit_identical(out, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
  }
}

TEST(Sharded, MixedSpecGroupIsBitIdenticalToo) {
  // An 8800 GT (14 SMs) next to an 8800 GTX (16 SMs): grid sizes differ
  // per card but the kernels' functional math is partition-independent,
  // so a heterogeneous fleet still reproduces the reference bit for bit.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 23);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    sim::DeviceGroup group({sim::geforce_8800_gt(), sim::geforce_8800_gtx()});
    const auto out = sharded_run(group, n, shards, dir, input);
    EXPECT_TRUE(bit_identical(out, ref));
  }
}

TEST(Sharded, MatchesHostPlanL2) {
  // Independent anchor: agreement with the host oracle, not just with the
  // out-of-core plan.
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  auto data = random_complex<float>(shape.volume(), 24);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host_plan(shape, Direction::Forward);
  host_plan.execute(ref);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Sharded, GroupOfOnePinsTheOutOfCoreTimeline) {
  // The degenerate-path guard: one device in a group must produce the
  // exact event timeline of the bare-device out-of-core plan — same
  // makespan, same transfer times and bytes, same launch sequence.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 25);

  sim::DeviceGroup group(1, sim::geforce_8800_gts());
  ShardedFft3DPlan sharded(group, n, shards, Direction::Forward);
  Device bare(sim::geforce_8800_gts());
  OutOfCoreFft3D reference(bare, n, shards, Direction::Forward);

  group.device(0).reset_clock();
  bare.reset_clock();
  std::vector<cxf> a = input;
  std::vector<cxf> b = input;
  const auto ta = sharded.execute(std::span<cxf>(a));
  const auto tb = reference.execute(std::span<cxf>(b));

  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_DOUBLE_EQ(ta.makespan_ms, tb.makespan_ms);
  Device& d = group.device(0);
  EXPECT_DOUBLE_EQ(d.elapsed_ms(), bare.elapsed_ms());
  EXPECT_DOUBLE_EQ(d.h2d_ms(), bare.h2d_ms());
  EXPECT_DOUBLE_EQ(d.d2h_ms(), bare.d2h_ms());
  EXPECT_EQ(d.h2d_bytes(), bare.h2d_bytes());
  EXPECT_EQ(d.d2h_bytes(), bare.d2h_bytes());
  ASSERT_EQ(d.history().size(), bare.history().size());
  for (std::size_t i = 0; i < d.history().size(); ++i) {
    EXPECT_EQ(d.history()[i].name, bare.history()[i].name);
    EXPECT_DOUBLE_EQ(d.history()[i].total_ms, bare.history()[i].total_ms);
  }
  // And the per-bucket sums coincide with the out-of-core buckets.
  ASSERT_EQ(ta.devices.size(), 1u);
  EXPECT_DOUBLE_EQ(ta.devices[0].h2d1_ms, tb.h2d1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].fft1_ms, tb.fft1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].twiddle_ms, tb.twiddle_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].d2h1_ms, tb.d2h1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].h2d2_ms, tb.h2d2_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].fft2_ms, tb.fft2_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].d2h2_ms, tb.d2h2_ms);
}

TEST(Sharded, ExchangeAndByteAccounting) {
  const std::size_t n = 64;
  const std::uint64_t volume_bytes = n * n * n * sizeof(cxf);
  auto data = random_complex<float>(n * n * n, 26);
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  group.reset_clocks();
  const auto t = plan.execute(std::span<cxf>(data));

  // Across the fleet the data crosses PCIe twice each way, exactly as on
  // one card; the exchange is the inner d2h + h2d pair.
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (std::size_t d = 0; d < group.size(); ++d) {
    up += group.device(d).h2d_bytes();
    down += group.device(d).d2h_bytes();
  }
  EXPECT_EQ(up, 2 * volume_bytes);
  EXPECT_EQ(down, 2 * volume_bytes);
  EXPECT_EQ(t.exchange_bytes(), 2 * volume_bytes);
  EXPECT_GT(t.exchange_fraction(), 0.0);
  EXPECT_LT(t.exchange_fraction(), 1.0);
  EXPECT_GT(t.barrier_ms, 0.0);
  EXPECT_GE(t.makespan_ms, t.max_busy_ms() / 2.0);

  // The host staging volume is part of the in-flight footprint.
  EXPECT_GE(group.peak_bytes_in_flight(), volume_bytes);
}

TEST(Sharded, MakespanMatchesClosedFormModelSerialCards) {
  // On 1-DMA cards the engine FIFOs serialize each chain exactly, so the
  // closed-form model should agree with the scheduler to rounding.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  auto data = random_complex<float>(n * n * n, 27);
  for (const std::size_t devices : {1u, 2u}) {
    sim::DeviceGroup group(devices, sim::geforce_8800_gts());
    ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    const auto t = plan.execute(std::span<cxf>(data));
    const auto phases = probe_shard_phases(group.device(0).spec(), n,
                                           shards, Direction::Forward);
    const double model = sharded_model_ms(phases, group.device(0).spec(), n,
                                          shards, devices);
    EXPECT_NEAR(t.makespan_ms, model, 1e-3 * model) << "devices=" << devices;
  }
}

TEST(Sharded, MakespanWithinModelToleranceOnDualEngineCards) {
  // The GTX 280 has two copy engines: the double-buffered pipeline model
  // is approximate there; the acceptance tolerance is 5%.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  auto data = random_complex<float>(n * n * n, 28);
  sim::DeviceGroup group(2, sim::geforce_gtx_280());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  const auto t = plan.execute(std::span<cxf>(data));
  const auto phases = probe_shard_phases(group.device(0).spec(), n, shards,
                                         Direction::Forward);
  const double model = sharded_model_ms(phases, group.device(0).spec(), n,
                                        shards, 2);
  EXPECT_NEAR(t.makespan_ms, model, 0.05 * model);
}

TEST(Sharded, RejectsBadGeometry) {
  sim::DeviceGroup group(2, sim::geforce_8800_gt());
  // Non-pow2 n, bad factor: as out-of-core.
  EXPECT_THROW(ShardedFft3DPlan(group, 63, 4, Direction::Forward), Error);
  EXPECT_THROW(ShardedFft3DPlan(group, 64, 3, Direction::Forward), Error);
  // A fleet that divides neither phase's work is not an error: the plan
  // runs on the largest usable member prefix (here 2 of 3), exactly as
  // the failover path would after losing a card.
  sim::DeviceGroup three(3, sim::geforce_8800_gt());
  ShardedFft3DPlan prefix(three, 64, 4, Direction::Forward);
  auto input = random_complex<float>(64 * 64 * 64, 99);
  auto expect = input;
  ShardedFft3DPlan pair(group, 64, 4, Direction::Forward);
  pair.execute(std::span<cxf>(expect));
  auto got = input;
  const auto t = prefix.execute(std::span<cxf>(got));
  EXPECT_TRUE(bit_identical(got, expect));
  EXPECT_EQ(t.devices[2].busy_ms(), 0.0);  // the third card sat idle
  // Device-resident execute is not a thing for a distributed volume.
  ShardedFft3DPlan plan(group, 64, 4, Direction::Forward);
  auto buf = group.device(0).alloc<cxf>(64);
  EXPECT_THROW(plan.execute(buf), Error);
}

TEST(Sharded, RegistryFrontDoorServesShardedPlans) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::sharded3d(64, 4, Direction::Forward);
  auto plan = reg.get_or_create(desc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->desc().kind, PlanKind::Sharded3D);
  EXPECT_EQ(reg.misses(), 1u);
  EXPECT_EQ(reg.get_or_create(desc), plan);  // shared instance
  EXPECT_EQ(reg.hits(), 1u);

  // The front-door plan runs through the generic host entry point.
  auto data = random_complex<float>(64 * 64 * 64, 29);
  const auto steps = plan->execute_host(std::span<cxf>(data));
  EXPECT_EQ(steps.size(), 7u);
  EXPECT_GT(plan->last_total_ms(), 0.0);

  // A single-device registry cannot serve a fleet-spanning description.
  EXPECT_THROW(PlanRegistry::of(group.device(0)).get_or_create(desc), Error);

  // Non-sharded descriptions still work through a group registry (built
  // on the group's first device).
  auto small = reg.get_or_create(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward));
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(&small->device(), &group.device(0));
}

TEST(Sharded, BatchHostRunsVolumesBackToBack) {
  const std::size_t n = 32;
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  auto v0 = random_complex<float>(n * n * n, 30);
  auto v1 = random_complex<float>(n * n * n, 31);
  auto s0 = random_complex<float>(n * n * n, 30);
  auto s1 = random_complex<float>(n * n * n, 31);
  plan.execute(std::span<cxf>(s0));
  plan.execute(std::span<cxf>(s1));

  std::vector<std::span<cxf>> volumes{std::span<cxf>(v0),
                                      std::span<cxf>(v1)};
  const auto steps = plan.execute_batch_host(volumes);
  EXPECT_EQ(steps.size(), 7u);
  EXPECT_TRUE(bit_identical(v0, s0));
  EXPECT_TRUE(bit_identical(v1, s1));
  EXPECT_GT(plan.last_total_ms(), 0.0);
}

// ---------------------------------------------------------------------
// Interconnect topologies: peer exchange and the pencil decomposition
// ---------------------------------------------------------------------

/// rows x cols covering `devices` exactly, squarest-first.
std::shared_ptr<sim::Torus2DTopology> torus_for(std::size_t devices) {
  std::size_t rows = 1;
  for (std::size_t r = 1; r * r <= devices; ++r) {
    if (devices % r == 0) rows = r;
  }
  return std::make_shared<sim::Torus2DTopology>(rows, devices / rows);
}

TEST(ShardedTopology, PeerFabricsBitIdenticalAcrossDeviceCounts) {
  // The tentpole acceptance sweep: every topology, every fleet size,
  // bit-identical to the single-device out-of-core reference. shards=16
  // on n=64 gives local_nz=4, so slab saturates at 4 members and the
  // larger meshes/tori exercise the pencil decomposition (py up to 16).
  const std::size_t n = 64;
  const std::size_t shards = 16;
  const auto input = random_complex<float>(n * n * n, 41);
  const auto ref =
      out_of_core_reference(n, shards, Direction::Forward, input);
  for (const std::size_t devices : {1u, 2u, 4u, 8u, 16u, 64u}) {
    {
      sim::DeviceGroup mesh(devices, sim::geforce_8800_gts(),
                            std::make_shared<sim::PeerMeshTopology>(devices));
      const auto out = sharded_run(mesh, n, shards, Direction::Forward, input);
      EXPECT_TRUE(bit_identical(out, ref)) << "mesh devices=" << devices;
    }
    {
      sim::DeviceGroup torus(devices, sim::geforce_8800_gts(),
                             torus_for(devices));
      const auto out =
          sharded_run(torus, n, shards, Direction::Forward, input);
      EXPECT_TRUE(bit_identical(out, ref)) << "torus devices=" << devices;
    }
  }
}

TEST(ShardedTopology, NonDividingFleetsFallBackToThePrefixBitIdentically) {
  // N = 3, 5, 6 divide neither shards=4 nor local_nz: the plan runs on
  // the largest usable prefix (2 or 4 cards) with peer legs, and the
  // result must not care.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 42);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    for (const std::size_t devices : {3u, 5u, 6u}) {
      sim::DeviceGroup mesh(devices, sim::geforce_8800_gts(),
                            std::make_shared<sim::PeerMeshTopology>(devices));
      EXPECT_TRUE(bit_identical(sharded_run(mesh, n, shards, dir, input), ref))
          << "mesh devices=" << devices;
      sim::DeviceGroup torus(devices, sim::geforce_8800_gts(),
                             torus_for(devices));
      EXPECT_TRUE(
          bit_identical(sharded_run(torus, n, shards, dir, input), ref))
          << "torus devices=" << devices;
    }
  }
}

TEST(ShardedTopology, SlabAndPencilAgreeBitForBit) {
  // The decomposition is a timing choice only: force both on the same
  // mesh and compare against the reference and each other.
  const std::size_t n = 64;
  const std::size_t shards = 16;
  const auto input = random_complex<float>(n * n * n, 43);
  const auto ref =
      out_of_core_reference(n, shards, Direction::Forward, input);
  sim::DeviceGroup mesh(8, sim::geforce_8800_gts(),
                        std::make_shared<sim::PeerMeshTopology>(8));
  ShardedFft3DPlan plan(mesh, n, shards, Direction::Forward);

  plan.set_decomposition(Decomposition::Slab);
  auto a = input;
  plan.execute(std::span<cxf>(a));
  EXPECT_EQ(plan.last_layout().decomp, Decomposition::Slab);
  EXPECT_EQ(plan.last_layout().exchange, Exchange::Peer);
  EXPECT_EQ(plan.last_layout().members, 4u);  // slab caps at local_nz

  plan.set_decomposition(Decomposition::Pencil);
  auto b = input;
  plan.execute(std::span<cxf>(b));
  EXPECT_EQ(plan.last_layout().decomp, Decomposition::Pencil);
  EXPECT_EQ(plan.last_layout().members, 8u);  // pencil uses the full mesh
  EXPECT_EQ(plan.last_layout().y_blocks, 2u);

  EXPECT_TRUE(bit_identical(a, ref));
  EXPECT_TRUE(bit_identical(b, ref));
}

TEST(ShardedTopology, LayoutResolutionFollowsTheTopology) {
  const std::size_t n = 64;
  const std::size_t shards = 16;
  // Trees never see peer legs, whatever the preference.
  const sim::PcieTreeTopology tree(8);
  const ShardLayout lt = shard_layout(tree, n, shards, 8,
                                      Decomposition::Pencil);
  EXPECT_EQ(lt.decomp, Decomposition::Slab);
  EXPECT_EQ(lt.exchange, Exchange::HostStaged);
  EXPECT_EQ(lt.members, 4u);
  // A mesh of 64 resolves the full pencil grid.
  const sim::PeerMeshTopology mesh(64);
  const ShardLayout lm = shard_layout(mesh, n, shards, 64,
                                      Decomposition::Pencil);
  EXPECT_EQ(lm.decomp, Decomposition::Pencil);
  EXPECT_EQ(lm.members, 64u);
  EXPECT_EQ(lm.y_blocks, 16u);
  EXPECT_EQ(lm.phase1_members, 16u);
  // A single card is always the host-staged degenerate layout.
  const ShardLayout l1 = shard_layout(mesh, n, shards, 1,
                                      Decomposition::Pencil);
  EXPECT_EQ(l1.members, 1u);
  EXPECT_EQ(l1.exchange, Exchange::HostStaged);
}

TEST(ShardedTopology, PlannerPrefersPencilWhereItScales) {
  // On a 16-wide mesh the slab layout strands 12 of 16 cards; the model
  // must steer the constructor to pencil. A 4-wide mesh has no pencil
  // option at all.
  const sim::GpuSpec spec = sim::geforce_8800_gts();
  const sim::PeerMeshTopology mesh16(16);
  EXPECT_EQ(choose_decomposition(mesh16, spec, 64, 16, 16,
                                 Direction::Forward),
            Decomposition::Pencil);
  const sim::PeerMeshTopology mesh4(4);
  EXPECT_EQ(choose_decomposition(mesh4, spec, 64, 16, 4,
                                 Direction::Forward),
            Decomposition::Slab);
  // The constructor applies the same call on peer-capable groups.
  sim::DeviceGroup group(16, spec, std::make_shared<sim::PeerMeshTopology>(16));
  ShardedFft3DPlan plan(group, 64, 16, Direction::Forward);
  EXPECT_EQ(plan.decomposition(), Decomposition::Pencil);
}

TEST(ShardedTopology, TopologyModelTracksPeerMakespans) {
  // The replayed model must stay within 5% of the scheduler on peer
  // fabrics, for both decompositions.
  const std::size_t n = 64;
  const std::size_t shards = 16;
  auto data = random_complex<float>(n * n * n, 44);
  const sim::GpuSpec spec = sim::geforce_8800_gts();
  const auto phases = probe_shard_phases(spec, n, shards, Direction::Forward);

  struct Case {
    std::shared_ptr<sim::Topology> topo;
    std::size_t devices;
    Decomposition decomp;
  };
  const Case cases[] = {
      {std::make_shared<sim::PeerMeshTopology>(4), 4, Decomposition::Slab},
      {std::make_shared<sim::PeerMeshTopology>(8), 8, Decomposition::Pencil},
      {std::make_shared<sim::Torus2DTopology>(2, 4), 8, Decomposition::Pencil},
  };
  for (const Case& c : cases) {
    sim::DeviceGroup group(c.devices, spec, c.topo);
    ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    plan.set_decomposition(c.decomp);
    auto run = data;
    const auto t = plan.execute(std::span<cxf>(run));
    const double model = topology_model_ms(phases, spec, *c.topo, n, shards,
                                           c.devices, c.decomp,
                                           Direction::Forward);
    EXPECT_NEAR(t.makespan_ms, model, 0.05 * model)
        << c.topo->kind() << " x" << c.devices;
  }
}

TEST(ShardedTopology, PeerExchangeSkipsTheHostBridge) {
  // On the mesh the all-to-all rides d2d legs: the PCIe counters see
  // exactly one volume up (phase 1) and one down (phase 2), not two.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const std::uint64_t volume_bytes = n * n * n * sizeof(cxf);
  auto data = random_complex<float>(n * n * n, 45);
  sim::DeviceGroup mesh(4, sim::geforce_8800_gts(),
                        std::make_shared<sim::PeerMeshTopology>(4));
  ShardedFft3DPlan plan(mesh, n, shards, Direction::Forward);
  mesh.reset_clocks();
  const auto t = plan.execute(std::span<cxf>(data));
  EXPECT_EQ(plan.last_layout().exchange, Exchange::Peer);
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (std::size_t d = 0; d < mesh.size(); ++d) {
    up += mesh.device(d).h2d_bytes();
    down += mesh.device(d).d2h_bytes();
  }
  EXPECT_EQ(up, volume_bytes);
  EXPECT_EQ(down, volume_bytes);
  EXPECT_GT(t.exchange_bytes(), 0u);
}

TEST(ShardedTopology, RealPlanRunsPeerExchangeBitIdentically) {
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const Shape3 shape = cube(n);
  std::vector<float> reals(shape.volume());
  SplitMix64 rng(46);
  for (auto& x : reals) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto padded = pack_real_volume<float>(reals, shape);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    // Reference: the host-staged tree fleet (the PR 3 behavior).
    sim::DeviceGroup tree(2, sim::geforce_8800_gts());
    ShardedRealFft3DPlan ref_plan(tree, n, shards, dir);
    auto ref = padded;
    ref_plan.execute(std::span<cxf>(ref));

    for (const std::size_t devices : {2u, 4u}) {
      sim::DeviceGroup mesh(devices, sim::geforce_8800_gts(),
                            std::make_shared<sim::PeerMeshTopology>(devices));
      ShardedRealFft3DPlan plan(mesh, n, shards, dir);
      auto got = padded;
      plan.execute(std::span<cxf>(got));
      EXPECT_TRUE(bit_identical(got, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
  }
}

TEST(ShardedTopology, BatchPipelinesOverThePeerFabric) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  sim::DeviceGroup mesh(4, sim::geforce_8800_gts(),
                        std::make_shared<sim::PeerMeshTopology>(4));
  ShardedFft3DPlan plan(mesh, n, shards, Direction::Forward);
  auto v0 = random_complex<float>(n * n * n, 47);
  auto v1 = random_complex<float>(n * n * n, 48);
  auto v2 = random_complex<float>(n * n * n, 49);
  auto s0 = v0;
  auto s1 = v1;
  auto s2 = v2;
  for (auto* s : {&s0, &s1, &s2}) plan.execute(std::span<cxf>(*s));

  std::vector<std::span<cxf>> volumes{std::span<cxf>(v0), std::span<cxf>(v1),
                                      std::span<cxf>(v2)};
  const auto t = plan.execute_batch(volumes, BatchMode::Pipelined);
  EXPECT_TRUE(bit_identical(v0, s0));
  EXPECT_TRUE(bit_identical(v1, s1));
  EXPECT_TRUE(bit_identical(v2, s2));
  ASSERT_EQ(t.volume_done_ms.size(), 3u);
  EXPECT_GT(t.makespan_ms, 0.0);
  // Pipelining must not be slower than three serial volumes.
  sim::DeviceGroup mesh2(4, sim::geforce_8800_gts(),
                         std::make_shared<sim::PeerMeshTopology>(4));
  ShardedFft3DPlan serial(mesh2, n, shards, Direction::Forward);
  auto w0 = s0;
  auto w1 = s1;
  auto w2 = s2;
  std::vector<std::span<cxf>> wv{std::span<cxf>(w0), std::span<cxf>(w1),
                                 std::span<cxf>(w2)};
  const auto ts = serial.execute_batch(wv, BatchMode::Serial);
  EXPECT_LE(t.makespan_ms, ts.makespan_ms * (1.0 + 1e-9));
}

}  // namespace
}  // namespace repro::gpufft
