// Multi-device sharded 3-D FFT: bit-exact equivalence with the
// single-device out-of-core plan, the pinned degenerate group-of-one
// timeline, exchange accounting, the closed-form pipeline model, and the
// registry front door.
#include "gpufft/sharded.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/registry.h"

namespace repro::gpufft {
namespace {

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

/// The single-device reference: the registry's out-of-core plan with the
/// same decimation factor (the arithmetic the sharded plan distributes).
std::vector<cxf> out_of_core_reference(std::size_t n, std::size_t shards,
                                       Direction dir,
                                       const std::vector<cxf>& input) {
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::out_of_core(n, shards, dir));
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  return data;
}

std::vector<cxf> sharded_run(sim::DeviceGroup& group, std::size_t n,
                             std::size_t shards, Direction dir,
                             const std::vector<cxf>& input) {
  ShardedFft3DPlan plan(group, n, shards, dir);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  return data;
}

TEST(Sharded, BitIdenticalToOutOfCore64AllDeviceCounts) {
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 21);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    for (const std::size_t devices : {1u, 2u, 4u}) {
      sim::DeviceGroup group(devices, sim::geforce_8800_gts());
      const auto out = sharded_run(group, n, shards, dir, input);
      EXPECT_TRUE(bit_identical(out, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
  }
}

TEST(Sharded, BitIdenticalToOutOfCore128AllDeviceCounts) {
  const std::size_t n = 128;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 22);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    for (const std::size_t devices : {1u, 2u, 4u}) {
      sim::DeviceGroup group(devices, sim::geforce_8800_gts());
      const auto out = sharded_run(group, n, shards, dir, input);
      EXPECT_TRUE(bit_identical(out, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
  }
}

TEST(Sharded, MixedSpecGroupIsBitIdenticalToo) {
  // An 8800 GT (14 SMs) next to an 8800 GTX (16 SMs): grid sizes differ
  // per card but the kernels' functional math is partition-independent,
  // so a heterogeneous fleet still reproduces the reference bit for bit.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 23);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto ref = out_of_core_reference(n, shards, dir, input);
    sim::DeviceGroup group({sim::geforce_8800_gt(), sim::geforce_8800_gtx()});
    const auto out = sharded_run(group, n, shards, dir, input);
    EXPECT_TRUE(bit_identical(out, ref));
  }
}

TEST(Sharded, MatchesHostPlanL2) {
  // Independent anchor: agreement with the host oracle, not just with the
  // out-of-core plan.
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  auto data = random_complex<float>(shape.volume(), 24);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host_plan(shape, Direction::Forward);
  host_plan.execute(ref);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Sharded, GroupOfOnePinsTheOutOfCoreTimeline) {
  // The degenerate-path guard: one device in a group must produce the
  // exact event timeline of the bare-device out-of-core plan — same
  // makespan, same transfer times and bytes, same launch sequence.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 25);

  sim::DeviceGroup group(1, sim::geforce_8800_gts());
  ShardedFft3DPlan sharded(group, n, shards, Direction::Forward);
  Device bare(sim::geforce_8800_gts());
  OutOfCoreFft3D reference(bare, n, shards, Direction::Forward);

  group.device(0).reset_clock();
  bare.reset_clock();
  std::vector<cxf> a = input;
  std::vector<cxf> b = input;
  const auto ta = sharded.execute(std::span<cxf>(a));
  const auto tb = reference.execute(std::span<cxf>(b));

  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_DOUBLE_EQ(ta.makespan_ms, tb.makespan_ms);
  Device& d = group.device(0);
  EXPECT_DOUBLE_EQ(d.elapsed_ms(), bare.elapsed_ms());
  EXPECT_DOUBLE_EQ(d.h2d_ms(), bare.h2d_ms());
  EXPECT_DOUBLE_EQ(d.d2h_ms(), bare.d2h_ms());
  EXPECT_EQ(d.h2d_bytes(), bare.h2d_bytes());
  EXPECT_EQ(d.d2h_bytes(), bare.d2h_bytes());
  ASSERT_EQ(d.history().size(), bare.history().size());
  for (std::size_t i = 0; i < d.history().size(); ++i) {
    EXPECT_EQ(d.history()[i].name, bare.history()[i].name);
    EXPECT_DOUBLE_EQ(d.history()[i].total_ms, bare.history()[i].total_ms);
  }
  // And the per-bucket sums coincide with the out-of-core buckets.
  ASSERT_EQ(ta.devices.size(), 1u);
  EXPECT_DOUBLE_EQ(ta.devices[0].h2d1_ms, tb.h2d1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].fft1_ms, tb.fft1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].twiddle_ms, tb.twiddle_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].d2h1_ms, tb.d2h1_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].h2d2_ms, tb.h2d2_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].fft2_ms, tb.fft2_ms);
  EXPECT_DOUBLE_EQ(ta.devices[0].d2h2_ms, tb.d2h2_ms);
}

TEST(Sharded, ExchangeAndByteAccounting) {
  const std::size_t n = 64;
  const std::uint64_t volume_bytes = n * n * n * sizeof(cxf);
  auto data = random_complex<float>(n * n * n, 26);
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  group.reset_clocks();
  const auto t = plan.execute(std::span<cxf>(data));

  // Across the fleet the data crosses PCIe twice each way, exactly as on
  // one card; the exchange is the inner d2h + h2d pair.
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (std::size_t d = 0; d < group.size(); ++d) {
    up += group.device(d).h2d_bytes();
    down += group.device(d).d2h_bytes();
  }
  EXPECT_EQ(up, 2 * volume_bytes);
  EXPECT_EQ(down, 2 * volume_bytes);
  EXPECT_EQ(t.exchange_bytes(), 2 * volume_bytes);
  EXPECT_GT(t.exchange_fraction(), 0.0);
  EXPECT_LT(t.exchange_fraction(), 1.0);
  EXPECT_GT(t.barrier_ms, 0.0);
  EXPECT_GE(t.makespan_ms, t.max_busy_ms() / 2.0);

  // The host staging volume is part of the in-flight footprint.
  EXPECT_GE(group.peak_bytes_in_flight(), volume_bytes);
}

TEST(Sharded, MakespanMatchesClosedFormModelSerialCards) {
  // On 1-DMA cards the engine FIFOs serialize each chain exactly, so the
  // closed-form model should agree with the scheduler to rounding.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  auto data = random_complex<float>(n * n * n, 27);
  for (const std::size_t devices : {1u, 2u}) {
    sim::DeviceGroup group(devices, sim::geforce_8800_gts());
    ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    const auto t = plan.execute(std::span<cxf>(data));
    const auto phases = probe_shard_phases(group.device(0).spec(), n,
                                           shards, Direction::Forward);
    const double model = sharded_model_ms(phases, group.device(0).spec(), n,
                                          shards, devices);
    EXPECT_NEAR(t.makespan_ms, model, 1e-3 * model) << "devices=" << devices;
  }
}

TEST(Sharded, MakespanWithinModelToleranceOnDualEngineCards) {
  // The GTX 280 has two copy engines: the double-buffered pipeline model
  // is approximate there; the acceptance tolerance is 5%.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  auto data = random_complex<float>(n * n * n, 28);
  sim::DeviceGroup group(2, sim::geforce_gtx_280());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  const auto t = plan.execute(std::span<cxf>(data));
  const auto phases = probe_shard_phases(group.device(0).spec(), n, shards,
                                         Direction::Forward);
  const double model = sharded_model_ms(phases, group.device(0).spec(), n,
                                        shards, 2);
  EXPECT_NEAR(t.makespan_ms, model, 0.05 * model);
}

TEST(Sharded, RejectsBadGeometry) {
  sim::DeviceGroup group(2, sim::geforce_8800_gt());
  // Non-pow2 n, bad factor: as out-of-core.
  EXPECT_THROW(ShardedFft3DPlan(group, 63, 4, Direction::Forward), Error);
  EXPECT_THROW(ShardedFft3DPlan(group, 64, 3, Direction::Forward), Error);
  // A fleet that divides neither phase's work is not an error: the plan
  // runs on the largest usable member prefix (here 2 of 3), exactly as
  // the failover path would after losing a card.
  sim::DeviceGroup three(3, sim::geforce_8800_gt());
  ShardedFft3DPlan prefix(three, 64, 4, Direction::Forward);
  auto input = random_complex<float>(64 * 64 * 64, 99);
  auto expect = input;
  ShardedFft3DPlan pair(group, 64, 4, Direction::Forward);
  pair.execute(std::span<cxf>(expect));
  auto got = input;
  const auto t = prefix.execute(std::span<cxf>(got));
  EXPECT_TRUE(bit_identical(got, expect));
  EXPECT_EQ(t.devices[2].busy_ms(), 0.0);  // the third card sat idle
  // Device-resident execute is not a thing for a distributed volume.
  ShardedFft3DPlan plan(group, 64, 4, Direction::Forward);
  auto buf = group.device(0).alloc<cxf>(64);
  EXPECT_THROW(plan.execute(buf), Error);
}

TEST(Sharded, RegistryFrontDoorServesShardedPlans) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::sharded3d(64, 4, Direction::Forward);
  auto plan = reg.get_or_create(desc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->desc().kind, PlanKind::Sharded3D);
  EXPECT_EQ(reg.misses(), 1u);
  EXPECT_EQ(reg.get_or_create(desc), plan);  // shared instance
  EXPECT_EQ(reg.hits(), 1u);

  // The front-door plan runs through the generic host entry point.
  auto data = random_complex<float>(64 * 64 * 64, 29);
  const auto steps = plan->execute_host(std::span<cxf>(data));
  EXPECT_EQ(steps.size(), 7u);
  EXPECT_GT(plan->last_total_ms(), 0.0);

  // A single-device registry cannot serve a fleet-spanning description.
  EXPECT_THROW(PlanRegistry::of(group.device(0)).get_or_create(desc), Error);

  // Non-sharded descriptions still work through a group registry (built
  // on the group's first device).
  auto small = reg.get_or_create(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward));
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(&small->device(), &group.device(0));
}

TEST(Sharded, BatchHostRunsVolumesBackToBack) {
  const std::size_t n = 32;
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  auto v0 = random_complex<float>(n * n * n, 30);
  auto v1 = random_complex<float>(n * n * n, 31);
  auto s0 = random_complex<float>(n * n * n, 30);
  auto s1 = random_complex<float>(n * n * n, 31);
  plan.execute(std::span<cxf>(s0));
  plan.execute(std::span<cxf>(s1));

  std::vector<std::span<cxf>> volumes{std::span<cxf>(v0),
                                      std::span<cxf>(v1)};
  const auto steps = plan.execute_batch_host(volumes);
  EXPECT_EQ(steps.size(), 7u);
  EXPECT_TRUE(bit_identical(v0, s0));
  EXPECT_TRUE(bit_identical(v1, s1));
  EXPECT_GT(plan.last_total_ms(), 0.0);
}

}  // namespace
}  // namespace repro::gpufft
