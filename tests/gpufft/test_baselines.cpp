// The two baseline 3-D FFTs (conventional six-step, CUFFT-like naive) must
// be functionally exact and measurably slower than the bandwidth-intensive
// plan — the paper's central comparison (Figure 1).
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/conventional3d.h"
#include "gpufft/naive.h"
#include "gpufft/plan.h"

namespace repro::gpufft {
namespace {

std::vector<cxf> host_fft3d(const std::vector<cxf>& input, Shape3 shape) {
  std::vector<cxf> ref = input;
  fft::Plan3D<float> plan(shape, Direction::Forward);
  plan.execute(ref);
  return ref;
}

class BaselineCubes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineCubes, ConventionalMatchesHost) {
  const Shape3 shape = cube(GetParam());
  const auto input = random_complex<float>(shape.volume(), GetParam() + 1);
  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  ConventionalFft3D plan(dev, shape, Direction::Forward);
  const auto steps = plan.execute(data);
  EXPECT_EQ(steps.size(), 6u);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, host_fft3d(input, shape)),
            fft_error_bound<float>(shape.volume()));
}

TEST_P(BaselineCubes, NaiveMatchesHost) {
  const Shape3 shape = cube(GetParam());
  const auto input = random_complex<float>(shape.volume(), GetParam() + 2);
  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  NaiveFft3D plan(dev, shape, Direction::Forward);
  plan.execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, host_fft3d(input, shape)),
            fft_error_bound<float>(shape.volume()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineCubes, ::testing::Values(16, 32, 64));

TEST(Baselines, InverseDirectionsWork) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 77);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> hp(shape, Direction::Inverse);
  hp.execute(ref);

  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  ConventionalFft3D plan(dev, shape, Direction::Inverse);
  plan.execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Baselines, OrderingMatchesFigure1) {
  // On the same card and volume: ours < conventional < naive in time.
  // (128^3: at tiny volumes the launch overheads blur the ordering.)
  const Shape3 shape = cube(128);
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.volume());

  BandwidthFft3D ours(dev, shape, Direction::Forward);
  ConventionalFft3D conv(dev, shape, Direction::Forward);
  NaiveFft3D naive(dev, shape, Direction::Forward);
  ours.execute(data);
  conv.execute(data);
  naive.execute(data);

  EXPECT_LT(ours.last_total_ms(), conv.last_total_ms());
  EXPECT_LT(conv.last_total_ms(), naive.last_total_ms());
  // Paper: ours is "more than three times faster than CUFFT" and "about
  // twice faster than conventional algorithm using transposes".
  EXPECT_GT(naive.last_total_ms() / ours.last_total_ms(), 2.5);
  EXPECT_GT(conv.last_total_ms() / ours.last_total_ms(), 1.3);
}

TEST(Baselines, TransposeIsTheBottleneck) {
  // Table 6: the transpose steps run at roughly half the bandwidth of the
  // FFT steps.
  const Shape3 shape = cube(64);
  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(shape.volume());
  ConventionalFft3D plan(dev, shape, Direction::Forward);
  const auto steps = plan.execute(data);
  ASSERT_EQ(steps.size(), 6u);
  const double fft_gbs = (steps[0].gbs + steps[2].gbs + steps[4].gbs) / 3.0;
  const double tr_gbs = (steps[1].gbs + steps[3].gbs + steps[5].gbs) / 3.0;
  EXPECT_LT(tr_gbs, 0.7 * fft_gbs);
}

TEST(Baselines, TransposeKernelIsExact) {
  const Shape3 s{8, 4, 2};
  Device dev(sim::geforce_8800_gt());
  auto in = dev.alloc<cxf>(s.volume());
  auto out = dev.alloc<cxf>(s.volume());
  const auto data = random_complex<float>(s.volume(), 5);
  dev.h2d(in, std::span<const cxf>(data));
  TransposeKernel k(in, out, s, 4);
  dev.launch(k);
  std::vector<cxf> result(s.volume());
  dev.d2h(std::span<cxf>(result), out);
  for (std::size_t z = 0; z < s.nz; ++z) {
    for (std::size_t y = 0; y < s.ny; ++y) {
      for (std::size_t x = 0; x < s.nx; ++x) {
        // out(z, x, y) == in(x, y, z)
        EXPECT_EQ(result[z + s.nz * (x + s.nx * y)], data[s.at(x, y, z)]);
      }
    }
  }
}

TEST(Baselines, Naive1DMatchesHostBatch) {
  const std::size_t n = 128;
  const std::size_t count = 32;
  const auto input = random_complex<float>(n * count, 9);
  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(n * count);
  dev.h2d(data, std::span<const cxf>(input));
  Naive1DFftKernel k(data, data, n, count, Direction::Forward, 16);
  dev.launch(k);
  std::vector<cxf> out(n * count);
  dev.d2h(std::span<cxf>(out), data);
  std::vector<cxf> ref = input;
  fft::Plan1D<float> plan(n, Direction::Forward);
  plan.execute(ref, count);
  EXPECT_LT(rel_l2_error<float>(out, ref), fft_error_bound<float>(n));
}

TEST(Baselines, Table8OursBeatsNaive1D) {
  // 65536 x 256-point: ours vs CUFFT1D-like, roughly 2-3x apart (Table 8).
  // Use a reduced batch for test speed; the ratio is batch-independent.
  const std::size_t n = 256;
  const std::size_t count = 8192;
  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(n * count);
  auto tw = dev.alloc<cxf>(n);

  FineKernelParams p;
  p.n = n;
  p.count = count;
  p.grid_blocks = default_grid_blocks(dev.spec());
  const auto roots = make_roots<float>(n, Direction::Forward);
  dev.h2d(tw, std::span<const cxf>(roots));
  FineFftKernel ours(data, data, p, &tw);
  const auto r_ours = dev.launch(ours);

  Naive1DFftKernel naive(data, data, n, count, Direction::Forward,
                         default_grid_blocks(dev.spec()));
  const auto r_naive = dev.launch(naive);

  EXPECT_GT(r_naive.total_ms / r_ours.total_ms, 1.6);
  EXPECT_LT(r_naive.total_ms / r_ours.total_ms, 5.0);
}

}  // namespace
}  // namespace repro::gpufft
