// End-to-end correctness of the five-step bandwidth-intensive 3-D FFT
// against the host library, plus the structural properties the paper
// claims for it (natural-order I/O, five launches, pattern usage).
#include "gpufft/plan.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"

namespace repro::gpufft {
namespace {

std::vector<cxf> gpu_fft3d(const std::vector<cxf>& input, Shape3 shape,
                           Direction dir, Device& dev,
                           std::vector<StepTiming>* steps = nullptr) {
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  BandwidthFft3D plan(dev, shape, dir);
  auto s = plan.execute(data);
  if (steps != nullptr) *steps = std::move(s);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  return out;
}

std::vector<cxf> host_fft3d(const std::vector<cxf>& input, Shape3 shape,
                            Direction dir) {
  std::vector<cxf> ref = input;
  fft::Plan3D<float> plan(shape, dir);
  plan.execute(ref);
  return ref;
}

class PlanCubes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanCubes, MatchesHostForward) {
  const Shape3 shape = cube(GetParam());
  const auto input = random_complex<float>(shape.volume(), GetParam());
  Device dev(sim::geforce_8800_gts());
  const auto out = gpu_fft3d(input, shape, Direction::Forward, dev);
  const auto ref = host_fft3d(input, shape, Direction::Forward);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanCubes, ::testing::Values(16, 32, 64));

TEST(Plan3DGpu, MatchesHostInverse) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 5);
  Device dev(sim::geforce_8800_gt());
  const auto out = gpu_fft3d(input, shape, Direction::Inverse, dev);
  const auto ref = host_fft3d(input, shape, Direction::Inverse);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Plan3DGpu, RoundTripWithScale) {
  const Shape3 shape = cube(32);
  const auto orig = random_complex<float>(shape.volume(), 17);
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(orig));
  BandwidthFft3D fwd(dev, shape, Direction::Forward);
  BandwidthFft3D inv(dev, shape, Direction::Inverse);
  fwd.execute(data);
  inv.execute(data);
  ScaleKernel scale(data, shape.volume(),
                    1.0f / static_cast<float>(shape.volume()), 48);
  dev.launch(scale);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, orig),
            fft_error_bound<float>(shape.volume()));
}

TEST(Plan3DGpu, NonCubicVolume) {
  const Shape3 shape{64, 32, 16};
  const auto input = random_complex<float>(shape.volume(), 9);
  Device dev(sim::geforce_8800_gts());
  const auto out = gpu_fft3d(input, shape, Direction::Forward, dev);
  const auto ref = host_fft3d(input, shape, Direction::Forward);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Plan3DGpu, FiveSteps) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 2);
  Device dev(sim::geforce_8800_gtx());
  std::vector<StepTiming> steps;
  gpu_fft3d(input, shape, Direction::Forward, dev, &steps);
  ASSERT_EQ(steps.size(), 5u);
  for (const auto& s : steps) {
    EXPECT_GT(s.ms, 0.0) << s.name;
    EXPECT_GT(s.gbs, 0.0) << s.name;
  }
  EXPECT_NE(steps[0].name.find("Z rank1"), std::string::npos);
  EXPECT_NE(steps[4].name.find("X fine"), std::string::npos);
}

TEST(Plan3DGpu, DeltaGivesConstant) {
  const Shape3 shape = cube(16);
  std::vector<cxf> input(shape.volume());
  input[0] = {1.0f, 0.0f};
  Device dev(sim::geforce_8800_gt());
  const auto out = gpu_fft3d(input, shape, Direction::Forward, dev);
  for (const auto& z : out) {
    EXPECT_NEAR(z.re, 1.0f, 1e-4f);
    EXPECT_NEAR(z.im, 0.0f, 1e-4f);
  }
}

TEST(Plan3DGpu, LinearityAcrossFullPipeline) {
  const Shape3 shape = cube(16);
  const auto a = random_complex<float>(shape.volume(), 31);
  const auto b = random_complex<float>(shape.volume(), 32);
  std::vector<cxf> combo(shape.volume());
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo[i] = a[i] + cxf{2.0f, -1.0f} * b[i];
  }
  Device dev(sim::geforce_8800_gts());
  const auto fa = gpu_fft3d(a, shape, Direction::Forward, dev);
  const auto fb = gpu_fft3d(b, shape, Direction::Forward, dev);
  const auto fc = gpu_fft3d(combo, shape, Direction::Forward, dev);
  std::vector<cxf> expect(shape.volume());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = fa[i] + cxf{2.0f, -1.0f} * fb[i];
  }
  EXPECT_LT(rel_l2_error<float>(fc, expect), 1e-4);
}

std::size_t shape_volume() { return std::size_t{256} * 256 * 256; }

TEST(Plan3DGpu, WorkBufferCountsAgainstCapacity) {
  // Workspace is leased from the per-device arena during execute, so
  // construction costs only the twiddle table...
  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(shape_volume());
  BandwidthFft3D plan(dev, cube(256), Direction::Forward);
  EXPECT_LT(dev.allocated_bytes(), 134217728u + (1u << 20));
  // ...but a 256^3 execute grows the arena by a work volume, and the pool
  // retains it: data + workspace pass 256 MB and another two volumes no
  // longer fit on the 512 MB card (this is what forces the out-of-core
  // 512^3 path).
  plan.execute(data);
  EXPECT_GT(dev.allocated_bytes(), 2u * 134217728u);
  EXPECT_THROW(dev.alloc<cxf>(2 * shape_volume()), sim::OutOfDeviceMemory);
}

}  // namespace
}  // namespace repro::gpufft
