// Section 3.3 out-of-core FFT: correctness against the host plan and the
// structural properties of the streamed two-phase algorithm.
#include "gpufft/outofcore.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"

namespace repro::gpufft {
namespace {

TEST(OutOfCore, MatchesHostPlan128) {
  const std::size_t n = 128;
  const Shape3 shape = cube(n);
  auto data = random_complex<float>(shape.volume(), 11);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host_plan(shape, Direction::Forward);
  host_plan.execute(ref);

  Device dev(sim::geforce_8800_gts());
  OutOfCoreFft3D plan(dev, n, /*splits=*/8, Direction::Forward);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(OutOfCore, MatchesHostPlanSplits4) {
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  auto data = random_complex<float>(shape.volume(), 12);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host_plan(shape, Direction::Forward);
  host_plan.execute(ref);

  Device dev(sim::geforce_8800_gt());
  OutOfCoreFft3D plan(dev, n, /*splits=*/4, Direction::Forward);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(OutOfCore, InverseDirection) {
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, 13);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host_plan(cube(n), Direction::Inverse);
  host_plan.execute(ref);

  Device dev(sim::geforce_8800_gtx());
  OutOfCoreFft3D plan(dev, n, 4, Direction::Inverse);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(n * n * n));
}

TEST(OutOfCore, TimingBucketsAllPositive) {
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, 14);
  Device dev(sim::geforce_8800_gt());
  OutOfCoreFft3D plan(dev, n, 4, Direction::Forward);
  const auto t = plan.execute(std::span<cxf>(data));
  EXPECT_GT(t.h2d1_ms, 0.0);
  EXPECT_GT(t.fft1_ms, 0.0);
  EXPECT_GT(t.twiddle_ms, 0.0);
  EXPECT_GT(t.d2h1_ms, 0.0);
  EXPECT_GT(t.h2d2_ms, 0.0);
  EXPECT_GT(t.fft2_ms, 0.0);
  EXPECT_GT(t.d2h2_ms, 0.0);
  EXPECT_NEAR(t.total_ms(),
              t.h2d1_ms + t.fft1_ms + t.twiddle_ms + t.d2h1_ms + t.h2d2_ms +
                  t.fft2_ms + t.d2h2_ms,
              1e-9);
}

TEST(OutOfCore, TransferDominatedOnGen1) {
  // Table 12: on the PCIe 1.1 GTX, transfers dwarf the on-device FFT time.
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, 15);
  Device dev(sim::geforce_8800_gtx());
  OutOfCoreFft3D plan(dev, n, 4, Direction::Forward);
  const auto t = plan.execute(std::span<cxf>(data));
  const double transfer =
      t.h2d1_ms + t.d2h1_ms + t.h2d2_ms + t.d2h2_ms;
  EXPECT_GT(transfer, t.fft1_ms + t.fft2_ms);
}

TEST(OutOfCore, DataCrossesTheLinkTwiceEachWay) {
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, 16);
  Device dev(sim::geforce_8800_gt());
  OutOfCoreFft3D plan(dev, n, 4, Direction::Forward);
  dev.reset_clock();
  plan.execute(std::span<cxf>(data));
  const std::uint64_t volume_bytes = n * n * n * sizeof(cxf);
  EXPECT_EQ(dev.h2d_bytes(), 2 * volume_bytes);
  EXPECT_EQ(dev.d2h_bytes(), 2 * volume_bytes);
}

TEST(OutOfCore, RejectsBadGeometry) {
  Device dev(sim::geforce_8800_gt());
  EXPECT_THROW(OutOfCoreFft3D(dev, 63, 4, Direction::Forward), Error);
  EXPECT_THROW(OutOfCoreFft3D(dev, 64, 3, Direction::Forward), Error);
}

TEST(OutOfCore, FullVolumeWouldNotFitButSlabDoes) {
  // The honest reason this algorithm exists: a 512^3 in-core plan cannot
  // allocate on a 512 MB card, but the 512x512x64 slab machinery can.
  Device dev(sim::geforce_8800_gts());
  EXPECT_THROW(
      {
        auto buf = dev.alloc<cxf>(std::size_t{512} * 512 * 512);
        (void)buf;
      },
      sim::OutOfDeviceMemory);
  EXPECT_NO_THROW(OutOfCoreFft3D(dev, 512, 8, Direction::Forward));
}

}  // namespace
}  // namespace repro::gpufft
