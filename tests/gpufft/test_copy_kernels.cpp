// Pattern-copy and stream-copy microbenchmark kernels (Tables 3/4, §2.1).
#include "gpufft/copy_kernels.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::gpufft {
namespace {

double pattern_copy_gbs(Device& dev, Pattern in_p, Pattern out_p) {
  auto in = dev.alloc<cxf>(pattern_shape().volume());
  auto out = dev.alloc<cxf>(pattern_shape().volume());
  PatternCopyKernel k(in, out, in_p, out_p,
                      default_grid_blocks(dev.spec()));
  const auto r = dev.launch(k);
  // Table 3/4 metric: useful bytes over elapsed time.
  return 2.0 * pattern_shape().volume() * sizeof(cxf) / (r.total_ms * 1e6);
}

TEST(PatternCopy, FunctionallyAPermutation) {
  Device dev(sim::geforce_8800_gt());
  // Use a smaller functional spot check: full 16M-element copies are run
  // once for D->B, verifying the data lands where Table 2 says.
  auto in = dev.alloc<cxf>(pattern_shape().volume());
  auto out = dev.alloc<cxf>(pattern_shape().volume());
  const Shape5 s = pattern_shape();
  std::vector<cxf> data(s.volume());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<float>(i % 65536), 0.0f};
  }
  dev.h2d(in, std::span<const cxf>(data));
  PatternCopyKernel k(in, out, Pattern::D, Pattern::B, 42);
  dev.launch(k);
  std::vector<cxf> result(s.volume());
  dev.d2h(std::span<cxf>(result), out);
  // in(x, r0, r1, r2, q) must land at out(x, r0, q, r1, r2).
  for (std::size_t q = 0; q < 16; q += 5) {
    for (std::size_t r0 = 0; r0 < 16; r0 += 7) {
      for (std::size_t x = 0; x < 256; x += 37) {
        EXPECT_EQ(result[s.at(x, r0, q, 3, 5)].re,
                  data[s.at(x, r0, 3, 5, q)].re);
      }
    }
  }
}

TEST(PatternCopy, Table4Shape) {
  // The paper's key observation (Tables 3/4): combos where both sides are
  // C or D are much slower than combos touching A or B.
  Device dev(sim::geforce_8800_gtx());
  const double aa = pattern_copy_gbs(dev, Pattern::A, Pattern::A);
  const double ab = pattern_copy_gbs(dev, Pattern::A, Pattern::B);
  const double cd = pattern_copy_gbs(dev, Pattern::C, Pattern::D);
  const double dd = pattern_copy_gbs(dev, Pattern::D, Pattern::D);
  const double da = pattern_copy_gbs(dev, Pattern::D, Pattern::A);

  EXPECT_GT(aa, 0.70 * dev.spec().peak_bandwidth_gbs());  // ~71.5 of 86.4
  EXPECT_NEAR(ab, aa, 0.12 * aa);
  EXPECT_LT(cd, 0.8 * aa);   // C/D combos collapse
  EXPECT_LT(dd, 0.8 * aa);
  EXPECT_GT(da, 0.99 * cd);  // one good side rescues the slot
}

TEST(PatternCopy, AllSlotsCoalesce) {
  // Every pattern keeps X innermost across threads, so slots coalesce even
  // when the DRAM-level pattern is bad — exactly the paper's point that
  // coalescing alone is not sufficient.
  Device dev(sim::geforce_8800_gt());
  auto in = dev.alloc<cxf>(pattern_shape().volume());
  auto out = dev.alloc<cxf>(pattern_shape().volume());
  PatternCopyKernel k(in, out, Pattern::D, Pattern::D, 42);
  const auto r = dev.launch(k);
  EXPECT_GT(r.coalesced_fraction, 0.99);
}

TEST(StreamCopy, BandwidthFallsWithStreamCount) {
  // Section 2.1: 71.7 GB/s at 1 stream -> 30.7 GB/s at 256 streams (GTX).
  Device dev(sim::geforce_8800_gtx());
  const std::size_t n = 1u << 22;  // 32 MB buffers
  auto in = dev.alloc<cxf>(n);
  auto out = dev.alloc<cxf>(n);
  auto run = [&](std::size_t streams) {
    MultiStreamCopyKernel k(in, out, streams, 48);
    const auto r = dev.launch(k);
    return 2.0 * n * sizeof(cxf) / (r.total_ms * 1e6);
  };
  const double s1 = run(1);
  const double s16 = run(16);
  const double s256 = run(256);
  EXPECT_GT(s1, 0.70 * dev.spec().peak_bandwidth_gbs());
  EXPECT_GT(s1, s16);
  EXPECT_GT(s16, s256);
  EXPECT_LT(s256, 0.65 * s1);
}

TEST(StreamCopy, CopiesCorrectly) {
  Device dev(sim::geforce_8800_gt());
  const std::size_t n = 4096;
  auto in = dev.alloc<cxf>(n);
  auto out = dev.alloc<cxf>(n);
  const auto data = random_complex<float>(n, 123);
  dev.h2d(in, std::span<const cxf>(data));
  MultiStreamCopyKernel k(in, out, 8, 8);
  dev.launch(k);
  std::vector<cxf> result(n);
  dev.d2h(std::span<cxf>(result), out);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(result[i], data[i]);
}

TEST(Multirow256, CorrectButStarved) {
  // Section 3.1: the one-256-point-FFT-per-thread design is functionally
  // fine but collapses to <10 GB/s effective bandwidth.
  Device dev(sim::geforce_8800_gtx());
  const std::size_t rows = 512;
  auto in = dev.alloc<cxf>(rows * 256);
  auto out = dev.alloc<cxf>(rows * 256);
  const auto data = random_complex<float>(rows * 256, 4);
  dev.h2d(in, std::span<const cxf>(data));
  Multirow256Kernel k(in, out, rows, Direction::Forward);
  const auto r = dev.launch(k);

  // Correctness of one row against the reference DFT.
  std::vector<cxf> result(rows * 256);
  dev.d2h(std::span<cxf>(result), out);
  std::vector<cxf> row(256);
  for (std::size_t p = 0; p < 256; ++p) row[p] = data[7 + rows * p];
  const auto ref = fft::dft_1d<float>(std::span<const cxf>(row),
                                      Direction::Forward);
  std::vector<cxf> got(256);
  for (std::size_t p = 0; p < 256; ++p) got[p] = result[7 + rows * p];
  EXPECT_LT(rel_l2_error<float>(got, ref), fft_error_bound<float>(256));

  // Starved bandwidth: effective GB/s is far below the card's peak.
  EXPECT_EQ(r.occupancy.active_threads, 8);
  EXPECT_LT(r.effective_gbs, 10.0);
}

}  // namespace
}  // namespace repro::gpufft
