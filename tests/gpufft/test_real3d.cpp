// Real-transform (r2c/c2r) 3-D plans: half-spectrum layout against the
// host PlanR2C3D/PlanC2R3D references, true-inverse round trips, the
// ~half traffic claim, registry routing, async equivalence, and the
// sharded real plan's bit-identical decimation + halved exchange.
#include "gpufft/real3d.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/real.h"
#include "gpufft/plan.h"
#include "gpufft/registry.h"
#include "gpufft/sharded.h"
#include "sim/device_group.h"

namespace repro::gpufft {
namespace {

std::vector<float> random_reals(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<cxf> to_cx(const std::vector<float>& v) {
  std::vector<cxf> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = {v[i], 0.0f};
  return out;
}

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

/// Run a registry-obtained real plan over a padded host buffer.
std::vector<cxf> device_real_fft(const std::vector<cxf>& padded,
                                 Shape3 shape, Direction dir, Device& dev) {
  auto plan = PlanRegistry::of(dev).get_or_create(PlanDesc::real3d(shape, dir));
  auto buf = dev.alloc<cxf>(plan->buffer_elements());
  dev.h2d(buf, std::span<const cxf>(padded));
  plan->execute(buf);
  std::vector<cxf> out(plan->buffer_elements());
  dev.d2h(std::span<cxf>(out), buf);
  return out;
}

class RealCubes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealCubes, ForwardMatchesHostHalfSpectrum) {
  const Shape3 shape = cube(GetParam());
  const auto reals = random_reals(shape.volume(), GetParam());
  Device dev(sim::geforce_8800_gts());
  const auto padded = pack_real_volume<float>(reals, shape);
  const auto out = device_real_fft(padded, shape, Direction::Forward, dev);

  fft::PlanR2C3D<float> host(shape);
  std::vector<cxf> ref(host.spectrum_elems());
  host.execute(std::span<const float>(reals), std::span<cxf>(ref));

  // Same buffer, same element positions: the host reference is the
  // bit-for-bit *layout* oracle; values agree to FFT tolerance.
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealCubes, ::testing::Values(32, 64));

TEST(Real3D, ForwardNonCubicMatchesHost) {
  const Shape3 shape{64, 32, 16};
  const auto reals = random_reals(shape.volume(), 7);
  Device dev(sim::geforce_8800_gt());
  const auto padded = pack_real_volume<float>(reals, shape);
  const auto out = device_real_fft(padded, shape, Direction::Forward, dev);

  fft::PlanR2C3D<float> host(shape);
  std::vector<cxf> ref(host.spectrum_elems());
  host.execute(std::span<const float>(reals), std::span<cxf>(ref));
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Real3D, HermitianEdgeBinsAreReal) {
  // Conjugate symmetry pins kx = 0 and kx = nx/2 at (ky, kz) self-paired
  // points to real values; the fused unpack must respect that.
  const Shape3 shape = cube(32);
  const auto reals = random_reals(shape.volume(), 11);
  Device dev(sim::geforce_8800_gts());
  const auto padded = pack_real_volume<float>(reals, shape);
  const auto out = device_real_fft(padded, shape, Direction::Forward, dev);
  // (ky, kz) = (0, 0) is self-conjugate: DC and Nyquist bins are real.
  EXPECT_NEAR(out[half_spectrum_index(shape, 0, 0, 0)].im, 0.0f, 1e-3f);
  EXPECT_NEAR(out[half_spectrum_index(shape, shape.nx / 2, 0, 0)].im, 0.0f,
              1e-3f);
  // A generic plane pair must be conjugate: X[kx,ky,kz] == conj(X[kx',...])
  const std::size_t ky = 3;
  const std::size_t kz = 5;
  const cxf a = out[half_spectrum_index(shape, 0, ky, kz)];
  const cxf b =
      out[half_spectrum_index(shape, 0, shape.ny - ky, shape.nz - kz)];
  EXPECT_NEAR(a.re, b.re, 1e-3f);
  EXPECT_NEAR(a.im, -b.im, 1e-3f);
}

TEST(Real3D, DeviceRoundTripIsIdentity) {
  // r2c then c2r through registry plans reconstructs the input: the c2r
  // pass folds the full normalization (true inverse, no ScaleKernel).
  const Shape3 shape = cube(64);
  const auto reals = random_reals(shape.volume(), 13);
  Device dev(sim::geforce_8800_gtx());
  auto padded = pack_real_volume<float>(reals, shape);
  auto mid = device_real_fft(padded, shape, Direction::Forward, dev);
  auto back = device_real_fft(mid, shape, Direction::Inverse, dev);
  const auto recovered = unpack_real_volume<float>(back, shape);
  EXPECT_LT(rel_l2_error<float>(to_cx(recovered), to_cx(reals)),
            fft_error_bound<float>(shape.volume()));
}

TEST(Real3D, InverseMatchesHostC2R3D) {
  const Shape3 shape = cube(32);
  const auto reals = random_reals(shape.volume(), 17);
  fft::PlanR2C3D<float> fwd(shape);
  std::vector<cxf> spectrum(fwd.spectrum_elems());
  fwd.execute(std::span<const float>(reals), std::span<cxf>(spectrum));

  Device dev(sim::geforce_8800_gts());
  const auto back = device_real_fft(spectrum, shape, Direction::Inverse, dev);
  const auto got = unpack_real_volume<float>(back, shape);

  fft::PlanC2R3D<float> inv(shape);
  std::vector<float> ref(shape.volume());
  inv.execute(std::span<const cxf>(spectrum), std::span<float>(ref));
  EXPECT_LT(rel_l2_error<float>(to_cx(got), to_cx(ref)),
            fft_error_bound<float>(shape.volume()));
}

TEST(Real3D, ExecuteAsyncMatchesExecuteBitForBit) {
  const Shape3 shape = cube(32);
  const auto reals = random_reals(shape.volume(), 19);
  const auto padded = pack_real_volume<float>(reals, shape);

  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::real3d(shape, Direction::Forward));
  auto a = dev.alloc<cxf>(plan->buffer_elements());
  auto b = dev.alloc<cxf>(plan->buffer_elements());
  dev.h2d(a, std::span<const cxf>(padded));
  dev.h2d(b, std::span<const cxf>(padded));
  plan->execute(a);
  {
    sim::Stream stream(dev);
    plan->execute_async(b, stream);
  }
  std::vector<cxf> sync(plan->buffer_elements());
  std::vector<cxf> async(plan->buffer_elements());
  dev.d2h(std::span<cxf>(sync), a);
  dev.d2h(std::span<cxf>(async), b);
  EXPECT_TRUE(bit_identical(sync, async));
}

TEST(Real3D, DramTrafficIsAboutHalfOfComplex) {
  // Every pass touches (nx/2+1)/nx of the complex plan's elements — the
  // bandwidth claim the real plan exists for. The split layout keeps all
  // passes coalesced once a half-warp fits inside a half-length row
  // (nx >= 128), so at 128^3 the measured DRAM ratio sits near
  // 65/128 ~ 0.508; accept <= 0.56 to leave room for the (amplified but
  // tiny) Nyquist-tail rank stores.
  const Shape3 shape = cube(128);
  Device dev(sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(dev);

  auto cplan = reg.get_or_create(
      PlanDesc::bandwidth3d(shape, Direction::Forward));
  auto cbuf = dev.alloc<cxf>(cplan->buffer_elements());
  dev.reset_clock();
  cplan->execute(cbuf);
  std::uint64_t complex_bytes = 0;
  for (const auto& r : dev.history()) complex_bytes += r.dram_bytes;

  auto rplan =
      reg.get_or_create(PlanDesc::real3d(shape, Direction::Forward));
  auto rbuf = dev.alloc<cxf>(rplan->buffer_elements());
  dev.reset_clock();
  rplan->execute(rbuf);
  std::uint64_t real_bytes = 0;
  for (const auto& r : dev.history()) real_bytes += r.dram_bytes;

  ASSERT_GT(complex_bytes, 0u);
  const double ratio = static_cast<double>(real_bytes) /
                       static_cast<double>(complex_bytes);
  EXPECT_LE(ratio, 0.56);
  EXPECT_GE(ratio, 0.40);
}

TEST(Real3D, RegistryCachesRealPlans) {
  Device dev(sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(dev);
  const auto desc = PlanDesc::real3d(cube(64), Direction::Forward);
  EXPECT_EQ(desc.kind, PlanKind::Real3D);
  EXPECT_EQ(desc.layout, Layout::RealHalfSpectrum);

  const auto misses0 = reg.misses();
  auto plan = reg.get_or_create(desc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(reg.misses(), misses0 + 1);
  const auto hits0 = reg.hits();
  EXPECT_EQ(reg.get_or_create(desc), plan);  // shared instance
  EXPECT_EQ(reg.hits(), hits0 + 1);
  EXPECT_EQ(plan->buffer_elements(), (64 / 2 + 1) * 64 * 64u);
  EXPECT_LT(plan->buffer_elements(), cube(64).volume());

  // Direction is part of the key: the inverse is a distinct plan.
  auto inverse =
      reg.get_or_create(PlanDesc::real3d(cube(64), Direction::Inverse));
  EXPECT_NE(inverse, plan);
}

TEST(Real3D, RejectsUnsupportedXExtents) {
  Device dev(sim::geforce_8800_gt());
  // Non-power-of-two, too small, too large: the half-length fine stages
  // need nx/2 in the staged-kernel range.
  EXPECT_THROW(RealFft3DPlan(dev, Shape3{48, 64, 64}, Direction::Forward),
               Error);
  EXPECT_THROW(RealFft3DPlan(dev, Shape3{16, 64, 64}, Direction::Forward),
               Error);
  EXPECT_THROW(RealFft3DPlan(dev, Shape3{1024, 64, 64}, Direction::Forward),
               Error);
  try {
    RealFft3DPlan plan(dev, Shape3{48, 64, 64}, Direction::Forward);
    FAIL() << "expected a geometry error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Sharded real plan
// ---------------------------------------------------------------------

std::vector<cxf> sharded_real_run(sim::DeviceGroup& group, std::size_t n,
                                  std::size_t shards, Direction dir,
                                  const std::vector<cxf>& padded) {
  ShardedRealFft3DPlan plan(group, n, shards, dir);
  std::vector<cxf> data = padded;
  plan.execute(std::span<cxf>(data));
  return data;
}

TEST(ShardedReal, BitIdenticalAcrossDeviceCountsAndSpecMixes) {
  // Decimation arithmetic depends only on `shards`: any fleet reproduces
  // the group-of-one result bit for bit, including a mixed GT + GTX pair.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const Shape3 shape = cube(n);
  const auto reals = random_reals(shape.volume(), 23);
  const auto padded = pack_real_volume<float>(reals, shape);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    sim::DeviceGroup one(1, sim::geforce_8800_gts());
    const auto ref = sharded_real_run(one, n, shards, dir, padded);
    for (const std::size_t devices : {2u, 4u}) {
      sim::DeviceGroup group(devices, sim::geforce_8800_gts());
      const auto out = sharded_real_run(group, n, shards, dir, padded);
      EXPECT_TRUE(bit_identical(out, ref))
          << "devices=" << devices
          << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
    }
    sim::DeviceGroup mixed(
        {sim::geforce_8800_gt(), sim::geforce_8800_gtx()});
    const auto out = sharded_real_run(mixed, n, shards, dir, padded);
    EXPECT_TRUE(bit_identical(out, ref))
        << "mixed dir=" << (dir == Direction::Forward ? "fwd" : "inv");
  }
}

TEST(ShardedReal, MatchesSingleDeviceRealPlan) {
  // Different factorization (slab decimation vs five-step), same
  // transform: agreement to FFT tolerance with the resident plan.
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  const auto reals = random_reals(shape.volume(), 29);
  const auto padded = pack_real_volume<float>(reals, shape);

  Device dev(sim::geforce_8800_gts());
  const auto ref = device_real_fft(padded, shape, Direction::Forward, dev);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  const auto out =
      sharded_real_run(group, n, 4, Direction::Forward, padded);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(ShardedReal, RoundTripIsIdentity) {
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  const auto reals = random_reals(shape.volume(), 31);
  auto data = pack_real_volume<float>(reals, shape);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan fwd(group, n, 4, Direction::Forward);
  ShardedRealFft3DPlan inv(group, n, 4, Direction::Inverse);
  fwd.execute(std::span<cxf>(data));
  inv.execute(std::span<cxf>(data));
  const auto recovered = unpack_real_volume<float>(data, shape);
  EXPECT_LT(rel_l2_error<float>(to_cx(recovered), to_cx(reals)),
            fft_error_bound<float>(shape.volume()));
}

TEST(ShardedReal, ExchangeMovesHalfTheComplexBytes) {
  // The host-staged all-to-all stages (n/2+1)/n of the complex bytes —
  // exactly, per leg, since every staged plane is (n/2+1)*n elements.
  const std::size_t n = 64;
  const std::size_t shards = 4;
  const auto creals = random_complex<float>(n * n * n, 37);
  const auto reals = random_reals(n * n * n, 37);
  auto cdata = creals;
  auto rdata = pack_real_volume<float>(reals, cube(n));

  sim::DeviceGroup cgroup(2, sim::geforce_8800_gts());
  ShardedFft3DPlan cplan(cgroup, n, shards, Direction::Forward);
  const auto ct = cplan.execute(std::span<cxf>(cdata));

  sim::DeviceGroup rgroup(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan rplan(rgroup, n, shards, Direction::Forward);
  const auto rt = rplan.execute(std::span<cxf>(rdata));

  EXPECT_EQ(ct.exchange_bytes(), 2 * n * n * n * sizeof(cxf));
  EXPECT_EQ(rt.exchange_bytes(), 2 * (n / 2 + 1) * n * n * sizeof(cxf));
  EXPECT_EQ(rt.exchange_bytes() * n, ct.exchange_bytes() * (n / 2 + 1));
}

TEST(ShardedReal, RegistryFrontDoorAndGeometryChecks) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::sharded_real3d(64, 4, Direction::Forward);
  EXPECT_EQ(desc.kind, PlanKind::Sharded3D);
  EXPECT_EQ(desc.layout, Layout::RealHalfSpectrum);
  auto plan = reg.get_or_create(desc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->buffer_elements(), (64 / 2 + 1) * 64 * 64u);
  EXPECT_EQ(reg.get_or_create(desc), plan);
  // The real and complex sharded descriptions are distinct cache keys.
  auto cplan =
      reg.get_or_create(PlanDesc::sharded3d(64, 4, Direction::Forward));
  EXPECT_NE(cplan, plan);

  // The front-door plan runs through the generic host entry point.
  const Shape3 shape = cube(64);
  auto data =
      pack_real_volume<float>(random_reals(shape.volume(), 41), shape);
  const auto steps = plan->execute_host(std::span<cxf>(data));
  EXPECT_EQ(steps.size(), 7u);
  EXPECT_GT(plan->last_total_ms(), 0.0);

  // Geometry guards: the real X fine pass needs n >= 32.
  EXPECT_THROW(ShardedRealFft3DPlan(group, 16, 4, Direction::Forward),
               Error);
  EXPECT_THROW(ShardedRealFft3DPlan(group, 63, 4, Direction::Forward),
               Error);
}

}  // namespace
}  // namespace repro::gpufft
