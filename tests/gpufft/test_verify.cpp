// ABFT result verification (gpufft/verify.h): the Parseval invariant has
// no false positives on any plan kind, detects injected silent kernel
// corruption (FaultKind::KernelCorrupt) and repairs it by bounded
// recompute to bit-identical results, surfaces a typed
// ResultVerificationError when the corruption outlasts the recompute
// budget, and costs nothing — in results or timeline — when the policy
// is Off. Policy validation and the RecoveryScope reporting helpers ride
// along.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "gpufft/outofcore.h"
#include "gpufft/registry.h"
#include "gpufft/sharded.h"
#include "gpufft/batch_sharded.h"

namespace repro::gpufft {
namespace {

using sim::FaultKind;

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

std::vector<cxf> input_for(const PlanDesc& desc, std::uint64_t seed) {
  return random_complex<float>(desc.buffer_elements(), seed);
}

/// Fault-free reference under VerifyPolicy::Off on a fresh device.
std::vector<cxf> reference_run(const PlanDesc& desc,
                               const std::vector<cxf>& input) {
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  return data;
}

// ---- No false positives ----

TEST(Verify, ParsevalHasNoFalsePositivesOnAnyPlanKind) {
  const std::vector<PlanDesc> kinds = {
      PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32),
      PlanDesc::bandwidth3d(cube(32), Direction::Inverse, Precision::F32),
      PlanDesc::conventional3d(cube(16), Direction::Forward),
      PlanDesc::mixed3d(Shape3{24, 20, 12}, Direction::Forward),
      PlanDesc::batch1d(64, 32, Direction::Forward),
      PlanDesc::out_of_core(32, 4, Direction::Forward),
      PlanDesc::out_of_core(32, 4, Direction::Inverse),
      PlanDesc::real3d(cube(32), Direction::Forward),
      PlanDesc::real3d(cube(32), Direction::Inverse),
  };
  for (const auto& desc : kinds) {
    const auto input = input_for(desc, 7001 + desc.hash() % 97);
    const auto ref = reference_run(desc, input);

    Device dev(sim::geforce_8800_gts());
    auto plan = PlanRegistry::of(dev).get_or_create(desc);
    ExecPolicy policy;
    policy.verify = VerifyPolicy::Parseval;
    plan->set_exec_policy(policy);
    const RecoveryScope scope;
    std::vector<cxf> data = input;
    plan->execute_host(std::span<cxf>(data));

    // A legitimate run passes first try — no recomputes, no failures —
    // and verification never perturbs the data path.
    EXPECT_TRUE(bit_identical(data, ref)) << desc.to_string();
    EXPECT_EQ(scope.delta().verify_failures, 0u) << desc.to_string();
    EXPECT_EQ(scope.delta().verify_recomputes, 0u) << desc.to_string();
    EXPECT_EQ(dev.health().verify_failures, 0u) << desc.to_string();
  }
}

// ---- Detection + repair ----

/// Arm a window of KernelCorrupt fires confined to the first execution
/// and require Parseval to catch it and the bounded recompute to restore
/// bit-identical output, attributed to the executing device's health.
void expect_corrupt_repaired(const PlanDesc& desc, std::uint64_t nth,
                             std::uint64_t count) {
  const auto input = input_for(desc, 7100 + nth);
  const auto ref = reference_run(desc, input);

  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Parseval;
  policy.verify_attempts = 3;
  plan->set_exec_policy(policy);
  const RecoveryScope scope;
  dev.faults().arm(FaultKind::KernelCorrupt, nth, count);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  const RecoveryCounters delta = scope.delta();

  EXPECT_TRUE(bit_identical(data, ref)) << desc.to_string();
  EXPECT_EQ(dev.faults().fired(FaultKind::KernelCorrupt), count)
      << desc.to_string();
  EXPECT_GE(delta.verify_failures, 1u) << desc.to_string();
  EXPECT_GE(delta.verify_recomputes, 1u) << desc.to_string();
  // The incident is the quarantine sweep's raw material.
  EXPECT_GE(dev.health().verify_failures, 1u) << desc.to_string();
}

TEST(Verify, ParsevalRepairsKernelCorruptOnSingleCardPlans) {
  expect_corrupt_repaired(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32), 1,
      1);
  expect_corrupt_repaired(
      PlanDesc::bandwidth3d(cube(32), Direction::Inverse, Precision::F32), 2,
      1);
  expect_corrupt_repaired(PlanDesc::out_of_core(32, 4, Direction::Forward),
                          3, 2);
  expect_corrupt_repaired(PlanDesc::real3d(cube(32), Direction::Forward), 1,
                          1);
}

TEST(Verify, ParsevalRepairsKernelCorruptOnShardedPlans) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 7201);

  sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan ref_plan(ref_group, n, shards, Direction::Forward);
  std::vector<cxf> ref = input;
  ref_plan.execute(std::span<cxf>(ref));

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Parseval;
  policy.verify_attempts = 3;
  plan.set_exec_policy(policy);
  const RecoveryScope scope;
  group.faults(1).arm(FaultKind::KernelCorrupt, 2, 1);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));

  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_EQ(group.faults(1).fired(FaultKind::KernelCorrupt), 1u);
  EXPECT_GE(scope.delta().verify_failures, 1u);
  // Attribution lands on the member that ran the corrupted pass.
  EXPECT_GE(group.device(1).health().verify_failures, 1u);
  EXPECT_EQ(group.device(0).health().verify_failures, 0u);
}

TEST(Verify, ParsevalRepairsKernelCorruptOnBatchShardedPlans) {
  const std::size_t n = 32;
  const auto a = random_complex<float>(n * n * n, 7301);
  const auto b = random_complex<float>(n * n * n, 7302);
  const auto ref_a =
      reference_run(PlanDesc::out_of_core(n, 4, Direction::Forward), a);
  const auto ref_b =
      reference_run(PlanDesc::out_of_core(n, 4, Direction::Forward), b);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  auto plan = std::dynamic_pointer_cast<BatchShardedFft3DPlan>(
      PlanRegistry::of(group).get_or_create(
          PlanDesc::batch_sharded3d(n, 4, Direction::Forward)));
  ASSERT_NE(plan, nullptr);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Parseval;
  policy.verify_attempts = 3;
  plan->set_exec_policy(policy);
  const RecoveryScope scope;
  group.faults(0).arm(FaultKind::KernelCorrupt, 2, 1);
  std::vector<cxf> da = a;
  std::vector<cxf> db = b;
  const std::span<cxf> volumes[] = {std::span<cxf>(da), std::span<cxf>(db)};
  plan->execute_batch(volumes);

  EXPECT_TRUE(bit_identical(da, ref_a));
  EXPECT_TRUE(bit_identical(db, ref_b));
  EXPECT_GE(scope.delta().verify_failures, 1u);
}

// ---- Off costs nothing ----

TEST(Verify, OffPolicyIsBitAndTimelineIdentical) {
  const PlanDesc desc = PlanDesc::out_of_core(32, 4, Direction::Forward);
  const auto input = input_for(desc, 7401);

  Device bare(sim::geforce_8800_gts());
  auto bare_plan = PlanRegistry::of(bare).get_or_create(desc);
  std::vector<cxf> ref = input;
  bare_plan->execute_host(std::span<cxf>(ref));

  // Explicit Off policy with an injector attached (but disarmed): the
  // verification layer and the fault hooks must both stay out of the
  // data path and off the simulated clock.
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Off;
  plan->set_exec_policy(policy);
  dev.faults().arm(FaultKind::KernelCorrupt, 1, 1);
  dev.faults().disarm_all();
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));

  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_DOUBLE_EQ(dev.elapsed_ms(), bare.elapsed_ms());
}

// ---- Full verification ----

TEST(Verify, FullVerifyRepairsKernelCorrupt) {
  const PlanDesc desc = PlanDesc::out_of_core(32, 4, Direction::Forward);
  const auto input = input_for(desc, 7501);
  const auto ref = reference_run(desc, input);

  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Full;
  policy.verify_attempts = 3;
  plan->set_exec_policy(policy);
  dev.faults().arm(FaultKind::KernelCorrupt, 1, 1);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));

  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_GE(dev.health().verify_failures, 1u);
}

// ---- Exhaustion surfaces typed ----

TEST(Verify, ExhaustedRecomputesThrowResultVerificationError) {
  const PlanDesc desc = PlanDesc::out_of_core(32, 4, Direction::Forward);
  const auto input = input_for(desc, 7601);

  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  ExecPolicy policy;
  policy.verify = VerifyPolicy::Parseval;
  policy.verify_attempts = 2;
  plan->set_exec_policy(policy);
  // Every launch corrupts, so the recompute window never closes.
  dev.faults().arm(FaultKind::KernelCorrupt, 1, std::uint64_t{1} << 40);
  std::vector<cxf> data = input;
  try {
    plan->execute_host(std::span<cxf>(data));
    FAIL() << "expected ResultVerificationError";
  } catch (const sim::ResultVerificationError& e) {
    EXPECT_NE(std::string(e.check()), "");
    // The plan layer stamped its label onto the in-flight error.
    EXPECT_NE(std::string(e.what()).find("plan["), std::string::npos);
  }
  EXPECT_GE(dev.health().verify_failures, 1u);

  // After disarming the same plan object recovers to clean service.
  dev.faults().disarm_all();
  const auto ref = reference_run(desc, input);
  data = input;
  plan->execute_host(std::span<cxf>(data));
  EXPECT_TRUE(bit_identical(data, ref));
}

// ---- Policy validation ----

TEST(Verify, InvalidPolicyErrorsNameTheOffendingField) {
  ExecPolicy bad_staging;
  bad_staging.staging.max_attempts = 0;
  try {
    validate_policy(bad_staging);
    FAIL() << "expected InvalidPolicyError";
  } catch (const sim::InvalidPolicyError& e) {
    EXPECT_EQ(std::string(e.field()), "StagePolicy.max_attempts");
  }

  ExecPolicy bad_verify;
  bad_verify.verify_attempts = 0;
  try {
    validate_policy(bad_verify);
    FAIL() << "expected InvalidPolicyError";
  } catch (const sim::InvalidPolicyError& e) {
    EXPECT_EQ(std::string(e.field()), "ExecPolicy.verify_attempts");
  }

  // The plan setter validates before accepting, leaving the previous
  // (valid) policy in place.
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::bandwidth3d(cube(16), Direction::Forward, Precision::F32));
  EXPECT_THROW(plan->set_exec_policy(bad_verify), sim::InvalidPolicyError);
  EXPECT_EQ(plan->exec_policy().verify_attempts, 2);
}

// ---- RecoveryScope / counters reporting ----

TEST(Verify, RecoveryScopeDeltasAndRebases) {
  const RecoveryScope outer;
  RecoveryScope scope;
  ++recovery_counters().verify_failures;
  ++recovery_counters().verify_recomputes;
  EXPECT_EQ(scope.delta().verify_failures, 1u);
  EXPECT_EQ(scope.delta().verify_recomputes, 1u);
  scope.rebase();
  EXPECT_EQ(scope.delta().verify_failures, 0u);
  ++recovery_counters().verify_failures;
  EXPECT_EQ(scope.delta().verify_failures, 1u);
  EXPECT_EQ(outer.delta().verify_failures, 2u);
}

TEST(Verify, RecoveryCountersResetZeroesEveryField) {
  RecoveryCounters c;
  c.transient_retries = 1;
  c.corruption_restages = 2;
  c.oom_evictions = 3;
  c.oom_retries = 4;
  c.watermark_evictions = 5;
  c.device_lost_failovers = 6;
  c.verify_failures = 7;
  c.verify_recomputes = 8;
  c.reset();
  const RecoveryCounters zero;
  EXPECT_EQ(c.minus(zero).verify_failures, 0u);
  EXPECT_EQ(c.transient_retries, 0u);
  EXPECT_EQ(c.device_lost_failovers, 0u);
  EXPECT_EQ(c.verify_recomputes, 0u);
}

}  // namespace
}  // namespace repro::gpufft
