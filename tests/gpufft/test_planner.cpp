// The plan-time autotuner: Table-2 rediscovery on the paper's hardware,
// divergent winners on mutated specs, wisdom round-trips, and the
// warm-registry zero-evaluation guarantee.
#include "gpufft/planner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/registry.h"

namespace repro::gpufft {
namespace {

// ---------------------------------------------------------------------------
// Table-2 rediscovery
// ---------------------------------------------------------------------------

TEST(Tuner, RediscoversTable2OnPaperHardware) {
  // The search space contains every knob of Table 2; on the cards the
  // paper tuned for, the cost model's argmin must be the published
  // configuration (the default TuneConfig).
  const auto desc = PlanDesc::bandwidth3d(cube(256), Direction::Forward);
  for (const auto& spec :
       {sim::geforce_8800_gtx(), sim::geforce_8800_gts()}) {
    const TuneResult r = tune_plan(spec, desc);
    EXPECT_EQ(r.best, TuneConfig{}) << spec.name << " picked "
                                    << r.best.to_string();
    EXPECT_DOUBLE_EQ(r.model_ms, r.default_ms);
    EXPECT_GT(r.evaluated, 500u) << "search space collapsed";
  }
}

TEST(Tuner, AllPatternPairsStillPickDToA) {
  // Lowering executable_only widens the search to every Table-2 pairing
  // that contains the decimation hop; read-D/write-A must still win, as
  // in the paper's Tables 3/4.
  PlannerOptions opts;
  opts.executable_only = false;
  const TuneResult r = tune_plan(
      sim::geforce_8800_gtx(),
      PlanDesc::bandwidth3d(cube(256), Direction::Forward), opts);
  EXPECT_EQ(r.best.coarse_read, Pattern::D);
  EXPECT_EQ(r.best.coarse_write, Pattern::A);
  EXPECT_TRUE(r.best.executable_patterns());
}

TEST(Tuner, RediscoversDefaultForRealPlans) {
  const TuneResult r =
      tune_plan(sim::geforce_8800_gtx(),
                PlanDesc::real3d(cube(256), Direction::Forward));
  EXPECT_EQ(r.best, TuneConfig{});
}

// ---------------------------------------------------------------------------
// Mixed-radix plans: the padded-pitch layout decision
// ---------------------------------------------------------------------------

TEST(Tuner, PadsNonPow2RowsOnPaperHardware) {
  // cube(100) rows are 100 complex floats: dense, most Y/Z half-warp
  // slots start off G80's 128-byte segments and degrade to sixteen
  // 32-byte transactions. The tuner must discover that a 16-element
  // padded pitch is worth the footprint — on every paper card.
  const auto desc = PlanDesc::mixed3d(cube(100), Direction::Forward);
  for (const auto& spec :
       {sim::geforce_8800_gtx(), sim::geforce_8800_gts()}) {
    const TuneResult r = tune_plan(spec, desc);
    EXPECT_EQ(r.best.pitch, PitchMode::Padded)
        << spec.name << " picked " << r.best.to_string();
    EXPECT_LT(r.model_ms, r.default_ms);
  }
}

TEST(Tuner, ModeledDramAmplificationJustifiesThePad) {
  // Pin the signal behind the decision, not just the argmin: the modeled
  // bytes-moved / bytes-useful ratio of the pitch-sensitive Y pass.
  const auto spec = sim::geforce_8800_gtx();
  const double dense =
      mixed_pitch_amplification(spec, cube(100), PitchMode::Dense);
  const double padded =
      mixed_pitch_amplification(spec, cube(100), PitchMode::Padded);
  EXPECT_GE(dense, 2.0) << "dense non-pow2 rows must look uncoalesced";
  EXPECT_LT(padded, 1.5) << "padded rows must coalesce";
  EXPECT_GE(dense / padded, 2.0);
}

TEST(Tuner, Pow2ShapesKeepTheDensePitch) {
  // Pow2 rows are already segment-aligned; padding buys nothing, and the
  // strict-improvement margin must keep the dense default.
  const TuneResult r =
      tune_plan(sim::geforce_8800_gtx(),
                PlanDesc::mixed3d(cube(64), Direction::Forward));
  EXPECT_EQ(r.best.pitch, PitchMode::Dense)
      << "picked " << r.best.to_string();
  const auto spec = sim::geforce_8800_gtx();
  EXPECT_LT(mixed_pitch_amplification(spec, cube(64), PitchMode::Dense),
            1.5);
}

TEST(Tuner, PitchKnobDoesNotWidenOtherKindsSearch) {
  // The pitch dimension exists only for Mixed3D: the five-step search
  // space (and therefore its wisdom) is exactly what it was before.
  const TuneResult mixed = tune_plan(
      sim::geforce_8800_gtx(),
      PlanDesc::mixed3d(cube(100), Direction::Forward));
  const TuneResult five = tune_plan(
      sim::geforce_8800_gtx(),
      PlanDesc::bandwidth3d(cube(256), Direction::Forward));
  EXPECT_EQ(mixed.evaluated, 2u * five.evaluated)
      << "mixed plans score both layouts per candidate";
}

TEST(Tuner, ModelsMixedAndNonPow2StreamedPlans) {
  const auto spec = sim::geforce_8800_gtx();
  EXPECT_TRUE(std::isfinite(model_plan_ms(
      spec, PlanDesc::mixed3d(Shape3{33, 8, 8}, Direction::Forward),
      TuneConfig{})));
  // A non-pow2 out-of-core volume is modeled through the mixed slab path.
  EXPECT_TRUE(std::isfinite(model_plan_ms(
      spec, PlanDesc::out_of_core(96, 4, Direction::Forward),
      TuneConfig{})));
}

// ---------------------------------------------------------------------------
// Divergence on mutated specs
// ---------------------------------------------------------------------------

TEST(Tuner, SmallRegisterFileFlipsCoarseTwiddlesToConstant) {
  // Three-quarters of the register file: the rank kernels' register-held
  // twiddle digits (52 regs) no longer fit two blocks per SM, so the
  // memory throttle halves bandwidth; a constant-memory table (44 regs)
  // keeps two blocks resident and wins despite its broadcast cost.
  auto spec = sim::geforce_8800_gtx();
  spec.registers_per_sm = 6144;
  const TuneResult r = tune_plan(
      spec, PlanDesc::bandwidth3d(cube(256), Direction::Forward));
  EXPECT_EQ(r.best.coarse_twiddles, TwiddleSource::Constant)
      << r.best.to_string();
  EXPECT_LT(r.model_ms, r.default_ms * 0.95)
      << "the flip must be a real win, not a tie-break";
}

TEST(Tuner, EightBankFabricRetunesThePad) {
  // On an 8-bank shared-memory fabric the one-word-per-16 pad no longer
  // spreads the butterfly strides; the tuner moves to a one-word-per-8
  // pad (and re-balances residency) instead of keeping Table 2.
  auto spec = sim::geforce_8800_gtx();
  spec.shmem_banks = 8;
  const TuneResult r = tune_plan(
      spec, PlanDesc::bandwidth3d(cube(256), Direction::Forward));
  EXPECT_NE(r.best, TuneConfig{});
  EXPECT_EQ(r.best.shmem_pad_words, 8u) << r.best.to_string();
  EXPECT_LT(r.model_ms, r.default_ms);
}

TEST(Tuner, SmallDeviceMemoryRepairsTheSlabDepth) {
  // A 256 MB card cannot hold the 512^3 plan's depth-8 slabs (the default
  // keeps the description's splits), so the default scores infinite and
  // the tuner selects the first depth whose working set fits.
  auto spec = sim::geforce_8800_gtx();
  spec.device_memory_bytes = 256ull << 20;
  const TuneResult r = tune_plan(
      spec, PlanDesc::out_of_core(512, 8, Direction::Forward));
  EXPECT_TRUE(std::isinf(r.default_ms));
  EXPECT_TRUE(std::isfinite(r.model_ms));
  EXPECT_EQ(r.best.slab_depth, 16u) << r.best.to_string();
}

TEST(Tuner, InfeasibleCandidatesScoreInfinite) {
  // A radix the axis cannot split and an oversized block both come back
  // as +inf instead of throwing out of the search.
  const auto spec = sim::geforce_8800_gtx();
  const auto desc = PlanDesc::bandwidth3d(cube(256), Direction::Forward);
  TuneConfig bad;
  bad.threads_per_block = 2048;  // above the SM thread limit
  EXPECT_TRUE(std::isinf(model_plan_ms(spec, desc, bad)));
  EXPECT_TRUE(std::isfinite(model_plan_ms(spec, desc, TuneConfig{})));
}

// ---------------------------------------------------------------------------
// Wisdom round-trip
// ---------------------------------------------------------------------------

TEST(Wisdom, TuneConfigLineRoundTrips) {
  TuneConfig cfg;
  cfg.coarse_twiddles = TwiddleSource::Constant;
  cfg.fine_twiddles = TwiddleSource::Recompute;
  cfg.blocks_per_sm = 2;
  cfg.threads_per_block = 128;
  cfg.coarse_radix = 8;
  cfg.shmem_pad_words = 0;
  cfg.slab_depth = 16;
  cfg.pitch = PitchMode::Padded;
  TuneConfig back;
  ASSERT_TRUE(parse_tune_config(cfg.to_string(), back));
  EXPECT_EQ(back, cfg);
  EXPECT_FALSE(parse_tune_config("tpb=sixtyfour", back));
  EXPECT_FALSE(parse_tune_config("warp=32", back));
  EXPECT_FALSE(parse_tune_config("pitch=ragged", back));
}

TEST(Wisdom, PlanLineRoundTrips) {
  const auto desc = PlanDesc::real3d(Shape3{64, 128, 256},
                                     Direction::Inverse);
  TuneConfig cfg;
  cfg.shmem_pad_words = 8;
  const std::string line = wisdom_line(desc, cfg);
  PlanDesc d2;
  TuneConfig c2;
  ASSERT_TRUE(parse_wisdom_line(line, d2, c2)) << line;
  EXPECT_EQ(d2, desc);
  EXPECT_EQ(c2, cfg);
  EXPECT_FALSE(parse_wisdom_line("plan kind=warp | tpb=64", d2, c2));
}

TEST(Wisdom, FingerprintSeesModelRelevantMutations) {
  const auto base = sim::geforce_8800_gtx();
  auto banks = base;
  banks.shmem_banks = 8;
  auto regs = base;
  regs.registers_per_sm = 6144;
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(banks));
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(regs));
  EXPECT_EQ(spec_fingerprint(base),
            spec_fingerprint(sim::geforce_8800_gtx()));
  EXPECT_TRUE(wisdom_header_matches(wisdom_header(base), base));
  EXPECT_FALSE(wisdom_header_matches(wisdom_header(banks), base));
}

TEST(Wisdom, RegistryRoundTripSkipsTheSearch) {
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  std::string wisdom;
  TuneConfig tuned;
  {
    Device dev(sim::geforce_8800_gtx());
    auto& reg = PlanRegistry::of(dev);
    tuned = reg.tuned_config(desc);
    EXPECT_EQ(reg.tune_searches(), 1u);
    EXPECT_GT(reg.tune_evaluations(), 0u);
    // A second lookup hits the in-memory wisdom.
    reg.tuned_config(desc);
    EXPECT_EQ(reg.tune_searches(), 1u);
    wisdom = reg.export_wisdom();
  }
  // A fresh process (fresh device + registry) warms from the wisdom text
  // and never searches.
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  ASSERT_EQ(reg.import_wisdom(wisdom), 1u);
  EXPECT_EQ(reg.tuned_config(desc), tuned);
  EXPECT_EQ(reg.tune_searches(), 0u) << "warm lookup must not re-search";
  EXPECT_EQ(reg.tune_evaluations(), 0u);
}

TEST(Wisdom, WrongSpecIsRejectedWhole) {
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  std::string wisdom;
  {
    Device dev(sim::geforce_8800_gtx());
    auto& reg = PlanRegistry::of(dev);
    reg.tuned_config(desc);
    wisdom = reg.export_wisdom();
  }
  Device dev(sim::geforce_8800_gt());  // different card, different model
  auto& reg = PlanRegistry::of(dev);
  EXPECT_EQ(reg.import_wisdom(wisdom), 0u);
  EXPECT_EQ(reg.wisdom_size(), 0u);
}

TEST(Wisdom, SchemaVersionRoundTripsAndStaleIsRejectedWhole) {
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  std::string wisdom;
  {
    Device dev(sim::geforce_8800_gtx());
    auto& reg = PlanRegistry::of(dev);
    reg.tuned_config(desc);
    wisdom = reg.export_wisdom();
  }
  // Export stamps the current schema, and a same-build import accepts it.
  EXPECT_NE(wisdom.find("schema " + std::to_string(kWisdomSchemaVersion)),
            std::string::npos);
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  ASSERT_EQ(reg.import_wisdom(wisdom), 1u);
  reg.clear();

  // Wisdom from an older cost model (schema line with a different
  // number) is rejected all-or-nothing with a clear message.
  Device dev2(sim::geforce_8800_gtx());
  auto& reg2 = PlanRegistry::of(dev2);
  std::string stale = wisdom;
  const auto pos = stale.find("schema ");
  stale.replace(pos, std::string("schema ").size() + 1, "schema 1");
  std::string reason;
  EXPECT_EQ(reg2.import_wisdom(stale, &reason), 0u);
  EXPECT_EQ(reg2.wisdom_size(), 0u);
  EXPECT_NE(reason.find("schema 1"), std::string::npos);
  EXPECT_NE(reason.find("re-tune"), std::string::npos);

  // A pre-versioned file (no schema line at all) is rejected too.
  std::string legacy = wisdom;
  const auto line_end = legacy.find('\n', legacy.find("schema "));
  legacy.erase(legacy.find("schema "), line_end - legacy.find("schema ") + 1);
  reason.clear();
  EXPECT_EQ(reg2.import_wisdom(legacy, &reason), 0u);
  EXPECT_EQ(reg2.wisdom_size(), 0u);
  EXPECT_NE(reason.find("older"), std::string::npos);
}

TEST(Wisdom, FileRoundTrip) {
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  const std::string path =
      ::testing::TempDir() + "/repro_gpufft_wisdom.txt";
  TuneConfig tuned;
  {
    Device dev(sim::geforce_8800_gtx());
    auto& reg = PlanRegistry::of(dev);
    tuned = reg.tuned_config(desc);
    reg.save_wisdom(path);
  }
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  ASSERT_EQ(reg.load_wisdom(path), 1u);
  EXPECT_EQ(reg.tuned_config(desc), tuned);
  EXPECT_EQ(reg.tune_searches(), 0u);
}

// ---------------------------------------------------------------------------
// Tuned plans execute correctly
// ---------------------------------------------------------------------------

TEST(TunedPlans, TunedPlanMatchesHostFft) {
  const Shape3 shape = cube(64);
  const auto input = random_complex<float>(shape.volume(), 7);
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);

  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  auto plan =
      reg.get_or_create_tuned(PlanDesc::bandwidth3d(shape, Direction::Forward));
  plan->execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);

  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, Direction::Forward);
  host.execute(ref);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(TunedPlans, TunedLookupsShareOnePlan) {
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  auto a = reg.get_or_create_tuned(desc);
  auto b = reg.get_or_create_tuned(desc);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(reg.tune_searches(), 1u) << "one search per (spec, desc)";
}

TEST(TunedPlans, GroupTunedConfigSearchesOncePerFingerprint) {
  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  const TuneConfig cfg = reg.tuned_config(desc);
  EXPECT_EQ(reg.tune_searches(), 1u)
      << "a homogeneous fleet shares one tuning search";
  // The winner was seeded into every member's wisdom: member registries
  // (which build the per-card slab plans) answer warm.
  for (std::size_t d = 0; d < group.size(); ++d) {
    auto& member = PlanRegistry::of(group.device(d));
    EXPECT_EQ(member.wisdom_size(), 1u) << "member " << d;
    EXPECT_EQ(member.tuned_config(desc), cfg) << "member " << d;
    EXPECT_EQ(member.tune_searches(), 0u) << "member " << d;
  }
  // And the group's own second lookup is warm too.
  (void)reg.tuned_config(desc);
  EXPECT_EQ(reg.tune_searches(), 1u);
}

TEST(TunedPlans, GroupTunedConfigSearchesPerDistinctSpec) {
  // Two distinct specs in the fleet: exactly two searches, with the
  // duplicate 8800 GT reusing the first GT's result.
  sim::DeviceGroup group({sim::geforce_8800_gt(), sim::geforce_gtx_280(),
                          sim::geforce_8800_gt()});
  auto& reg = PlanRegistry::of(group);
  const auto desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  (void)reg.tuned_config(desc);
  EXPECT_EQ(reg.tune_searches(), 2u);
  for (std::size_t d = 0; d < group.size(); ++d) {
    auto& member = PlanRegistry::of(group.device(d));
    (void)member.tuned_config(desc);
    EXPECT_EQ(member.tune_searches(), 0u) << "member " << d;
  }
}

TEST(TunedPlans, TunedLookupRejectsPreTunedDescriptions) {
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  PlanDesc desc = PlanDesc::bandwidth3d(cube(64), Direction::Forward);
  desc.tune.blocks_per_sm = 1;
  EXPECT_THROW((void)reg.tuned_config(desc), Error);
}

}  // namespace
}  // namespace repro::gpufft
