// The GPU 2-D plan against the host 2-D library.
#include "gpufft/plan2d.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"

namespace repro::gpufft {
namespace {

using fft::Shape2;

class Gpu2DShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(Gpu2DShapes, MatchesHostPlan) {
  const auto [nx, ny] = GetParam();
  const Shape2 shape{nx, ny};
  const auto input = random_complex<float>(shape.area(), nx + ny);
  std::vector<cxf> ref = input;
  fft::Plan2D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(shape.area());
  dev.h2d(data, std::span<const cxf>(input));
  BandwidthFft2D plan(dev, shape, Direction::Forward);
  const auto steps = plan.execute(data);
  EXPECT_EQ(steps.size(), 3u);
  std::vector<cxf> out(shape.area());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.area()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Gpu2DShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{256, 64},
                      std::pair<std::size_t, std::size_t>{32, 256},
                      std::pair<std::size_t, std::size_t>{128, 8}));

TEST(Gpu2D, RoundTrip) {
  const Shape2 shape{64, 64};
  const auto orig = random_complex<float>(shape.area(), 4);
  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(shape.area());
  dev.h2d(data, std::span<const cxf>(orig));
  BandwidthFft2D fwd(dev, shape, Direction::Forward);
  BandwidthFft2D inv(dev, shape, Direction::Inverse);
  fwd.execute(data);
  inv.execute(data);
  ScaleKernel scale(data, shape.area(),
                    1.0f / static_cast<float>(shape.area()), 42);
  dev.launch(scale);
  std::vector<cxf> out(shape.area());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, orig),
            fft_error_bound<float>(shape.area()));
}

TEST(Gpu2D, DoublePrecisionOnGtx280) {
  const Shape2 shape{64, 32};
  const auto input = random_complex<double>(shape.area(), 5);
  std::vector<cxd> ref = input;
  fft::Plan2D<double> host(shape, fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_gtx_280());
  auto data = dev.alloc<cxd>(shape.area());
  dev.h2d(data, std::span<const cxd>(input));
  BandwidthFft2DT<double> plan(dev, shape, Direction::Forward);
  plan.execute(data);
  std::vector<cxd> out(shape.area());
  dev.d2h(std::span<cxd>(out), data);
  EXPECT_LT(rel_l2_error<double>(out, ref),
            fft_error_bound<double>(shape.area()));
}

TEST(Gpu2D, StepsAreCoalescedAndTimed) {
  const Shape2 shape{256, 256};
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.area());
  BandwidthFft2D plan(dev, shape, Direction::Forward);
  dev.reset_clock();
  const auto steps = plan.execute(data);
  for (const auto& s : steps) {
    EXPECT_GT(s.ms, 0.0) << s.name;
  }
  for (const auto& r : dev.history()) {
    EXPECT_GT(r.coalesced_fraction, 0.99) << r.name;
  }
}

}  // namespace
}  // namespace repro::gpufft
