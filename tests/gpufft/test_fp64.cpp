// Double precision on the GPU (the paper's Section 4.5 future work):
// correctness against the double host library, the hardware gating (the
// 8800 series has no DP units), and the expected fp64 performance
// characteristics on a GT200-class card.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/plan.h"

namespace repro::gpufft {
namespace {

TEST(Fp64, GpuPlanMatchesDoubleHostLibrary) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<double>(shape.volume(), 1);
  std::vector<cxd> ref = input;
  fft::Plan3D<double> host(shape, fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_gtx_280());
  auto data = dev.alloc<cxd>(shape.volume());
  dev.h2d(data, std::span<const cxd>(input));
  BandwidthFft3DT<double> plan(dev, shape, Direction::Forward);
  plan.execute(data);
  std::vector<cxd> out(shape.volume());
  dev.d2h(std::span<cxd>(out), data);
  EXPECT_LT(rel_l2_error<double>(out, ref),
            fft_error_bound<double>(shape.volume()));
}

TEST(Fp64, DoublePrecisionRefusedOn8800) {
  // "Currently available CUDA GPUs support only single precision
  // operations" — launching an fp64 kernel on a G80/G92 must fail.
  Device dev(sim::geforce_8800_gtx());
  const Shape3 shape = cube(16);
  auto data = dev.alloc<cxd>(shape.volume());
  BandwidthFft3DT<double> plan(dev, shape, Direction::Forward);
  EXPECT_THROW(plan.execute(data), Error);
}

TEST(Fp64, SinglePrecisionStillRunsOnGtx280) {
  Device dev(sim::geforce_gtx_280());
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 2);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  plan.execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(Fp64, DoubleIsSlowerThanSingleOnSameCard) {
  const Shape3 shape = cube(128);
  Device dev(sim::geforce_gtx_280());
  double ms32 = 0.0;
  double ms64 = 0.0;
  {
    auto data = dev.alloc<cxf>(shape.volume());
    BandwidthFft3D plan(dev, shape, Direction::Forward);
    plan.execute(data);
    ms32 = plan.last_total_ms();
  }
  {
    auto data = dev.alloc<cxd>(shape.volume());
    BandwidthFft3DT<double> plan(dev, shape, Direction::Forward);
    plan.execute(data);
    ms64 = plan.last_total_ms();
  }
  // Twice the bytes at minimum; DP-unit pressure adds more on top.
  EXPECT_GT(ms64, 1.8 * ms32);
  EXPECT_LT(ms64, 10.0 * ms32);
}

TEST(Fp64, DoubleRoundTrip) {
  const Shape3 shape = cube(32);
  const auto orig = random_complex<double>(shape.volume(), 3);
  Device dev(sim::geforce_gtx_280());
  auto data = dev.alloc<cxd>(shape.volume());
  dev.h2d(data, std::span<const cxd>(orig));
  BandwidthFft3DT<double> fwd(dev, shape, Direction::Forward);
  BandwidthFft3DT<double> inv(dev, shape, Direction::Inverse);
  fwd.execute(data);
  inv.execute(data);
  ScaleKernelT<double> scale(data, shape.volume(),
                             1.0 / static_cast<double>(shape.volume()), 48);
  dev.launch(scale);
  std::vector<cxd> out(shape.volume());
  dev.d2h(std::span<cxd>(out), data);
  EXPECT_LT(rel_l2_error<double>(out, orig),
            fft_error_bound<double>(shape.volume()));
}

TEST(Fp64, DoublePrecisionIsActuallyMoreAccurate) {
  // The point of the future work: fp64 beats fp32 accuracy by orders of
  // magnitude on the same transform.
  const Shape3 shape = cube(32);
  const auto input64 = random_complex<double>(shape.volume(), 4);
  std::vector<cxf> input32(shape.volume());
  for (std::size_t i = 0; i < input32.size(); ++i) {
    input32[i] = {static_cast<float>(input64[i].re),
                  static_cast<float>(input64[i].im)};
  }
  // Oracle in double on the host.
  std::vector<cxd> oracle = input64;
  fft::Plan3D<double> host(shape, fft::Direction::Forward);
  host.execute(oracle);

  Device dev(sim::geforce_gtx_280());
  auto d64 = dev.alloc<cxd>(shape.volume());
  dev.h2d(d64, std::span<const cxd>(input64));
  BandwidthFft3DT<double> p64(dev, shape, Direction::Forward);
  p64.execute(d64);
  std::vector<cxd> out64(shape.volume());
  dev.d2h(std::span<cxd>(out64), d64);

  auto d32 = dev.alloc<cxf>(shape.volume());
  dev.h2d(d32, std::span<const cxf>(input32));
  BandwidthFft3D p32(dev, shape, Direction::Forward);
  p32.execute(d32);
  std::vector<cxf> out32f(shape.volume());
  dev.d2h(std::span<cxf>(out32f), d32);
  std::vector<cxd> out32(shape.volume());
  for (std::size_t i = 0; i < out32.size(); ++i) {
    out32[i] = {out32f[i].re, out32f[i].im};
  }

  const double err64 = rel_l2_error<double>(out64, oracle);
  const double err32 = rel_l2_error<double>(out32, oracle);
  EXPECT_LT(err64 * 1e4, err32);
}

}  // namespace
}  // namespace repro::gpufft
