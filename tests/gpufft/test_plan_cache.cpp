// The plan/executor core: PlanRegistry LRU behaviour, ResourceCache
// twiddle sharing and workspace-arena accounting, and the batched
// execution path.
#include "gpufft/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "gpufft/batch1d.h"
#include "gpufft/cache.h"
#include "gpufft/conventional3d.h"
#include "gpufft/plan.h"
#include "fft/plan.h"

namespace repro::gpufft {
namespace {

TEST(PlanRegistry, SameDescriptionIsAHit) {
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  const auto desc = PlanDesc::bandwidth3d(cube(32), Direction::Forward);

  auto a = reg.get_or_create(desc);
  EXPECT_EQ(reg.misses(), 1u);
  EXPECT_EQ(reg.hits(), 0u);

  auto b = reg.get_or_create(desc);
  EXPECT_EQ(reg.misses(), 1u);
  EXPECT_EQ(reg.hits(), 1u);
  EXPECT_EQ(a.get(), b.get()) << "equal descs must share one plan";

  // A different direction is a different plan.
  auto c = reg.get_or_create(
      PlanDesc::bandwidth3d(cube(32), Direction::Inverse));
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(reg.misses(), 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(PlanRegistry, DistinctKindsDistinctPlans) {
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  const Shape3 shape = cube(32);
  auto bw = reg.get_or_create(
      PlanDesc::bandwidth3d(shape, Direction::Forward));
  auto conv = reg.get_or_create(
      PlanDesc::conventional3d(shape, Direction::Forward));
  auto naive = reg.get_or_create(PlanDesc::naive3d(shape, Direction::Forward));
  EXPECT_NE(bw.get(), conv.get());
  EXPECT_NE(conv.get(), naive.get());
  EXPECT_EQ(reg.misses(), 3u);
}

TEST(PlanRegistry, LruEvictionKeepsOutstandingPlansAlive) {
  Device dev(sim::geforce_8800_gtx());
  auto& reg = PlanRegistry::of(dev);
  reg.set_capacity(2);

  const auto d16 = PlanDesc::bandwidth3d(cube(16), Direction::Forward);
  const auto d32 = PlanDesc::bandwidth3d(cube(32), Direction::Forward);
  const auto d64 = PlanDesc::bandwidth3d(cube(64), Direction::Forward);

  auto p16 = reg.get_or_create(d16);
  reg.get_or_create(d32);
  // Touch d16 so d32 is the least recently used.
  reg.get_or_create(d16);
  reg.get_or_create(d64);

  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_TRUE(reg.contains(d16));
  EXPECT_FALSE(reg.contains(d32));
  EXPECT_TRUE(reg.contains(d64));

  // An evicted-then-recreated desc is a miss, and the held handle of a
  // still-resident plan keeps working after evictions.
  auto data = dev.alloc<cxf>(cube(16).volume());
  const auto input = random_complex<float>(cube(16).volume(), 7);
  dev.h2d(data, std::span<const cxf>(input));
  EXPECT_NO_THROW(p16->execute(data));
}

TEST(PlanRegistry, ConvolutionPlansAreNotRegistryConstructible) {
  Device dev(sim::geforce_8800_gtx());
  EXPECT_THROW(PlanRegistry::of(dev).get_or_create(
                   PlanDesc::convolution(cube(16))),
               repro::Error);
}

TEST(ResourceCache, TwiddleTablesAreSharedAcrossLivePlans) {
  Device dev(sim::geforce_8800_gtx());
  auto& cache = ResourceCache::of(dev);
  const Shape3 shape = cube(64);

  {
    BandwidthFft3D p1(dev, shape, Direction::Forward);
    // A cube shares ONE table across its three axes: one upload, three
    // outstanding handles.
    EXPECT_EQ(cache.twiddle_uploads(), 1u);
    EXPECT_EQ(cache.twiddle_use_count<float>(64, Direction::Forward), 3);

    {
      ConventionalFft3D p2(dev, shape, Direction::Forward);
      EXPECT_EQ(cache.twiddle_uploads(), 1u)
          << "second plan must reuse the resident table";
      EXPECT_EQ(cache.twiddle_use_count<float>(64, Direction::Forward), 6);
      EXPECT_GT(cache.twiddle_hits(), 0u);
    }
    EXPECT_EQ(cache.twiddle_use_count<float>(64, Direction::Forward), 3);
  }
  // Table stays resident for future plans even with no outstanding users.
  EXPECT_EQ(cache.twiddle_use_count<float>(64, Direction::Forward), 0);
  EXPECT_EQ(cache.twiddle_tables(), 1u);
}

TEST(ResourceCache, WorkspaceArenaAccountsHighWater) {
  Device dev(sim::geforce_8800_gtx());
  auto& cache = ResourceCache::of(dev);
  constexpr std::size_t kSmall = 1024;
  constexpr std::size_t kLarge = 4096;

  {
    auto a = cache.lease<float>(kSmall);
    auto b = cache.lease<float>(kLarge);
    EXPECT_EQ(cache.workspace_in_use_bytes(),
              (kSmall + kLarge) * sizeof(cxf));
  }
  EXPECT_EQ(cache.workspace_in_use_bytes(), 0u);
  EXPECT_EQ(cache.workspace_high_water_bytes(),
            (kSmall + kLarge) * sizeof(cxf));
  EXPECT_EQ(cache.workspace_allocs(), 2u);

  // A later lease that fits reuses a pooled block: no new device memory.
  {
    auto c = cache.lease<float>(kSmall);
    EXPECT_GE(c.buffer().size(), kSmall);
  }
  EXPECT_EQ(cache.workspace_allocs(), 2u);
  EXPECT_EQ(cache.workspace_leases(), 3u);
  EXPECT_EQ(cache.workspace_pool_bytes(),
            (kSmall + kLarge) * sizeof(cxf));
  EXPECT_EQ(cache.workspace_high_water_bytes(),
            (kSmall + kLarge) * sizeof(cxf));
}

TEST(ResourceCache, IdlePlansHoldNoWorkspace) {
  Device dev(sim::geforce_8800_gtx());
  const Shape3 shape = cube(32);
  const std::size_t before = dev.allocated_bytes();
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  // Construction cost is the twiddle table, not a work volume.
  EXPECT_LT(dev.allocated_bytes() - before, shape.volume() * sizeof(cxf));

  auto data = dev.alloc<cxf>(shape.volume());
  const auto input = random_complex<float>(shape.volume(), 3);
  dev.h2d(data, std::span<const cxf>(input));
  plan.execute(data);
  EXPECT_EQ(ResourceCache::of(dev).workspace_in_use_bytes(), 0u)
      << "workspace must return to the arena after execute";
  EXPECT_GE(ResourceCache::of(dev).workspace_pool_bytes(),
            shape.volume() * sizeof(cxf));
}

TEST(FftPlan, ExecuteBatchMatchesSerialExecuteBitExactly) {
  const Shape3 shape = cube(16);
  const auto in0 = random_complex<float>(shape.volume(), 100);
  const auto in1 = random_complex<float>(shape.volume(), 101);

  // Serial reference on one device...
  Device dev_a(sim::geforce_8800_gtx());
  auto plan_a = PlanRegistry::of(dev_a).get_or_create(
      PlanDesc::bandwidth3d(shape, Direction::Forward));
  std::vector<cxf> ref0(shape.volume());
  std::vector<cxf> ref1(shape.volume());
  {
    auto buf = dev_a.alloc<cxf>(shape.volume());
    dev_a.h2d(buf, std::span<const cxf>(in0));
    plan_a->execute(buf);
    dev_a.d2h(std::span<cxf>(ref0), buf);
    dev_a.h2d(buf, std::span<const cxf>(in1));
    plan_a->execute(buf);
    dev_a.d2h(std::span<cxf>(ref1), buf);
  }

  // ...the batched path on another.
  Device dev_b(sim::geforce_8800_gtx());
  auto plan_b = PlanRegistry::of(dev_b).get_or_create(
      PlanDesc::bandwidth3d(shape, Direction::Forward));
  auto b0 = dev_b.alloc<cxf>(shape.volume());
  auto b1 = dev_b.alloc<cxf>(shape.volume());
  dev_b.h2d(b0, std::span<const cxf>(in0));
  dev_b.h2d(b1, std::span<const cxf>(in1));
  std::array<DeviceBuffer<cxf>*, 2> volumes{&b0, &b1};
  const auto steps = plan_b->execute_batch(volumes);
  EXPECT_FALSE(steps.empty());
  EXPECT_GT(plan_b->last_total_ms(), 0.0);

  std::vector<cxf> out0(shape.volume());
  std::vector<cxf> out1(shape.volume());
  dev_b.d2h(std::span<cxf>(out0), b0);
  dev_b.d2h(std::span<cxf>(out1), b1);
  for (std::size_t i = 0; i < shape.volume(); ++i) {
    ASSERT_EQ(out0[i].re, ref0[i].re);
    ASSERT_EQ(out0[i].im, ref0[i].im);
    ASSERT_EQ(out1[i].re, ref1[i].re);
    ASSERT_EQ(out1[i].im, ref1[i].im);
  }
}

TEST(FftPlan, ExecuteHostRoundTripsThroughLeasedStaging) {
  const std::size_t n = 64;
  const std::size_t count = 8;
  Device dev(sim::geforce_8800_gtx());
  Batch1DFft plan(dev, n, count, Direction::Forward);

  auto data = random_complex<float>(n * count, 55);
  std::vector<cxf> ref = data;
  fft::Plan1D<float> host_plan(n, fft::Direction::Forward);
  host_plan.execute(std::span<cxf>(ref), count);

  plan.execute_host(std::span<cxf>(data));
  double err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    err = std::max(err, static_cast<double>((data[i] - ref[i]).abs()));
  }
  EXPECT_LT(err, 1e-3);
  EXPECT_EQ(ResourceCache::of(dev).workspace_in_use_bytes(), 0u);
}

}  // namespace
}  // namespace repro::gpufft
