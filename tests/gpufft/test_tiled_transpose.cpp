// The tiled shared-memory transpose (extension): exactness, coalescing of
// both sides, bank-conflict freedom, and its effect on the six-step plan.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/conventional3d.h"
#include "gpufft/plan.h"

namespace repro::gpufft {
namespace {

TEST(TiledTranspose, IsExact) {
  const Shape3 s{32, 8, 16};
  Device dev(sim::geforce_8800_gt());
  auto in = dev.alloc<cxf>(s.volume());
  auto out = dev.alloc<cxf>(s.volume());
  const auto data = random_complex<float>(s.volume(), 3);
  dev.h2d(in, std::span<const cxf>(data));
  TiledTransposeKernel k(in, out, s, 8);
  dev.launch(k);
  std::vector<cxf> result(s.volume());
  dev.d2h(std::span<cxf>(result), out);
  for (std::size_t z = 0; z < s.nz; ++z) {
    for (std::size_t y = 0; y < s.ny; ++y) {
      for (std::size_t x = 0; x < s.nx; ++x) {
        ASSERT_EQ(result[z + s.nz * (x + s.nx * y)], data[s.at(x, y, z)]);
      }
    }
  }
}

TEST(TiledTranspose, BothSidesCoalesce) {
  const Shape3 s{128, 16, 128};
  Device dev(sim::geforce_8800_gtx());
  auto in = dev.alloc<cxf>(s.volume());
  auto out = dev.alloc<cxf>(s.volume());
  TiledTransposeKernel k(in, out, s, 48);
  const auto r = dev.launch(k);
  EXPECT_GT(r.coalesced_fraction, 0.99);
  // No uncoalesced amplification: DRAM traffic == useful traffic.
  EXPECT_EQ(r.dram_bytes, 2ull * s.volume() * sizeof(cxf));
}

TEST(TiledTranspose, MuchFasterThanNaive) {
  const Shape3 s{256, 64, 256};
  Device dev(sim::geforce_8800_gt());
  auto in = dev.alloc<cxf>(s.volume());
  auto out = dev.alloc<cxf>(s.volume());
  TiledTransposeKernel tiled(in, out, s, 42);
  TransposeKernel naive(in, out, s, 42);
  const auto rt = dev.launch(tiled);
  const auto rn = dev.launch(naive);
  EXPECT_LT(rt.total_ms, 0.5 * rn.total_ms);
}

TEST(TiledTranspose, RejectsNonTileMultiples) {
  Device dev(sim::geforce_8800_gt());
  auto in = dev.alloc<cxf>(8 * 8 * 8);
  auto out = dev.alloc<cxf>(8 * 8 * 8);
  EXPECT_THROW(TiledTransposeKernel(in, out, Shape3{8, 8, 8}, 8), Error);
}

TEST(TiledTranspose, SixStepPlanStaysCorrectWithTiling) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 7);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  ConventionalFft3D plan(dev, shape, Direction::Forward, TuneConfig{},
                         TransposeStrategy::Tiled);
  plan.execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

TEST(TiledTranspose, FiveStepStillBeatsTiledSixStep) {
  // The paper's deeper claim: even a good transpose costs three extra
  // zero-flop passes, so folding the reordering into the FFT passes wins.
  const Shape3 shape = cube(128);
  Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.volume());
  BandwidthFft3D ours(dev, shape, Direction::Forward);
  ours.execute(data);
  ConventionalFft3D tiled(dev, shape, Direction::Forward, TuneConfig{},
                          TransposeStrategy::Tiled);
  tiled.execute(data);
  EXPECT_LT(ours.last_total_ms(), tiled.last_total_ms());
}

}  // namespace
}  // namespace repro::gpufft
