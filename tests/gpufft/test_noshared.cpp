// Table 9 ablation: the X-axis transform without shared memory.
#include "gpufft/noshared.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"

namespace repro::gpufft {
namespace {

std::vector<cxf> run_variant(ExchangeMode mode, std::size_t n,
                             std::size_t count, const std::vector<cxf>& input,
                             double* total_ms = nullptr) {
  Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(n * count);
  dev.h2d(data, std::span<const cxf>(input));
  const auto result =
      run_x_axis_variant(dev, data, n, count, Direction::Forward, mode);
  if (total_ms != nullptr) *total_ms = result.total_ms;
  std::vector<cxf> out(n * count);
  dev.d2h(std::span<cxf>(out), data);
  return out;
}

TEST(NoShared, AllVariantsAreCorrect) {
  const std::size_t n = 256;
  const std::size_t count = 64;
  const auto input = random_complex<float>(n * count, 3);
  std::vector<cxf> ref = input;
  fft::Plan1D<float> plan(n, Direction::Forward);
  plan.execute(ref, count);

  for (ExchangeMode mode :
       {ExchangeMode::SharedMemory, ExchangeMode::TextureMemory,
        ExchangeMode::NonCoalesced}) {
    const auto out = run_variant(mode, n, count, input);
    EXPECT_LT(rel_l2_error<float>(out, ref), fft_error_bound<float>(n))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(NoShared, Table9Ordering) {
  // Table 9 (8800 GTS): shared 5.17 ms < texture 5.11+8.43 < plain
  // non-coalesced 5.13+14.3 for the X-axis transform of 256^3.
  const std::size_t n = 256;
  const std::size_t count = 16384;  // reduced volume, same per-pass shape
  const auto input = random_complex<float>(n * count, 8);
  double t_shared = 0.0;
  double t_tex = 0.0;
  double t_plain = 0.0;
  run_variant(ExchangeMode::SharedMemory, n, count, input, &t_shared);
  run_variant(ExchangeMode::TextureMemory, n, count, input, &t_tex);
  run_variant(ExchangeMode::NonCoalesced, n, count, input, &t_plain);

  EXPECT_LT(t_shared, t_tex);
  EXPECT_LT(t_tex, t_plain);
  // "More than 25% performance advantage" overall; on the X step alone the
  // two-pass variants are >2x slower.
  EXPECT_GT(t_tex / t_shared, 1.8);
  EXPECT_GT(t_plain / t_shared, 2.5);
}

TEST(NoShared, TwoPassesReported) {
  Device dev(sim::geforce_8800_gts());
  const std::size_t n = 256;
  const std::size_t count = 256;
  auto data = dev.alloc<cxf>(n * count);
  const auto shared = run_x_axis_variant(dev, data, n, count,
                                         Direction::Forward,
                                         ExchangeMode::SharedMemory);
  EXPECT_EQ(shared.steps.size(), 1u);
  const auto tex = run_x_axis_variant(dev, data, n, count,
                                      Direction::Forward,
                                      ExchangeMode::TextureMemory);
  EXPECT_EQ(tex.steps.size(), 2u);
}

TEST(NoShared, PassBIsTheSlowPass) {
  Device dev(sim::geforce_8800_gts());
  const std::size_t n = 256;
  const std::size_t count = 8192;
  auto data = dev.alloc<cxf>(n * count);
  const auto r = run_x_axis_variant(dev, data, n, count, Direction::Forward,
                                    ExchangeMode::NonCoalesced);
  ASSERT_EQ(r.steps.size(), 2u);
  EXPECT_GT(r.steps[1].ms, 1.5 * r.steps[0].ms);
}

TEST(NoShared, InverseDirection) {
  const std::size_t n = 128;
  const std::size_t count = 32;
  const auto input = random_complex<float>(n * count, 21);
  std::vector<cxf> ref = input;
  fft::Plan1D<float> plan(n, Direction::Inverse);
  plan.execute(ref, count);
  const auto out =
      run_variant(ExchangeMode::TextureMemory, n, count, input);
  // run_variant uses Forward; redo locally for inverse.
  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(n * count);
  dev.h2d(data, std::span<const cxf>(input));
  run_x_axis_variant(dev, data, n, count, Direction::Inverse,
                     ExchangeMode::TextureMemory);
  std::vector<cxf> inv_out(n * count);
  dev.d2h(std::span<cxf>(inv_out), data);
  EXPECT_LT(rel_l2_error<float>(inv_out, ref), fft_error_bound<float>(n));
}

}  // namespace
}  // namespace repro::gpufft
