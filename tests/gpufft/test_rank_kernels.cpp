// The coarse rank-1/rank-2 kernels: functional correctness of one full
// axis transform (rank1 + rank2 must compose into an n-point FFT) and the
// access-pattern properties the paper engineers for.
#include "gpufft/rank_kernels.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::gpufft {
namespace {

/// Apply rank1 then rank2 for one axis of length n = f1*f2 over a buffer
/// shaped (nx, f1, f2) with the axis as digits (dim1=low, dim2=high), and
/// return the transformed volume in natural order. This mirrors steps 1+2
/// of the plan with the remaining dims collapsed into (a=f1, b=f2, c=1)...
/// Here we use the exact plan shapes with dummy extents of 1.
std::vector<cxf> transform_axis_via_ranks(std::span<const cxf> input,
                                          std::size_t nx, std::size_t n,
                                          Direction dir,
                                          TwiddleSource twiddles) {
  const AxisSplit split = split_axis(n);
  const std::size_t f1 = split.f1;
  const std::size_t f2 = split.f2;

  Device dev(sim::geforce_8800_gt());
  auto v = dev.alloc<cxf>(nx * n);
  auto w = dev.alloc<cxf>(nx * n);
  auto twd = dev.alloc<cxf>(n);
  const auto roots = make_roots<float>(n, dir);
  dev.h2d(twd, std::span<const cxf>(roots));
  dev.h2d(v, input);

  RankKernelParams p;
  p.dir = dir;
  p.twiddles = twiddles;
  p.grid_blocks = 8;
  p.threads_per_block = 64;

  // Treat the volume as (nx, f1, 1, 1, f2): transform along dim 4.
  p.in_shape = Shape5{{nx, f1, 1, 1, f2}};
  // Rank1 twiddle digit c must be the low digit Z1: our plan always has the
  // low digit in dim 3 ('c') when the high digit is in dim 4. Rearrange:
  p.in_shape = Shape5{{nx, 1, 1, f1, f2}};
  Rank1Kernel k1(v, w, p, n, &twd);
  dev.launch(k1);

  // After rank1: (nx, f2, 1, 1, f1): transform along dim 4 (the low digit).
  p.in_shape = Shape5{{nx, f2, 1, 1, f1}};
  Rank2Kernel k2(w, v, p);
  dev.launch(k2);

  // After rank2: (nx, f2, f1, 1, 1) with k = K2 + f2*K1 natural.
  std::vector<cxf> out(nx * n);
  dev.d2h(std::span<cxf>(out), v);
  return out;
}

class RankCompose
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RankCompose, TwoRanksEqualFullFft) {
  const std::size_t n = std::get<0>(GetParam());
  const Direction dir = std::get<1>(GetParam()) == 0 ? Direction::Forward
                                                     : Direction::Inverse;
  const std::size_t nx = 64;
  const auto input = random_complex<float>(nx * n, n * 7);

  const auto out =
      transform_axis_via_ranks(input, nx, n, dir, TwiddleSource::Registers);

  // Reference: n-point DFT along the strided axis for every x.
  std::vector<cxf> ref(nx * n);
  std::vector<cxf> line(n);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t e = 0; e < n; ++e) line[e] = input[x + nx * e];
    auto t = fft::dft_1d<float>(std::span<const cxf>(line), dir);
    for (std::size_t e = 0; e < n; ++e) ref[x + nx * e] = t[e];
  }
  EXPECT_LT(rel_l2_error<float>(out, ref), fft_error_bound<float>(n));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDirections, RankCompose,
    ::testing::Combine(::testing::Values(16, 32, 64, 128, 256),
                       ::testing::Values(0, 1)));

TEST(RankKernels, TwiddleSourcesAgree) {
  const std::size_t n = 256;
  const std::size_t nx = 32;
  const auto input = random_complex<float>(nx * n, 3);
  const auto base = transform_axis_via_ranks(input, nx, n,
                                             Direction::Forward,
                                             TwiddleSource::Registers);
  for (TwiddleSource tw : {TwiddleSource::Constant, TwiddleSource::Texture,
                           TwiddleSource::Recompute}) {
    const auto alt =
        transform_axis_via_ranks(input, nx, n, Direction::Forward, tw);
    EXPECT_LT(rel_l2_error<float>(alt, base), 1e-5);
  }
}

TEST(RankKernels, ReadsCoalesced) {
  // X-innermost work order must make every global slot coalesce.
  Device dev(sim::geforce_8800_gtx());
  const Shape5 shape{{256, 4, 4, 4, 16}};
  auto v = dev.alloc<cxf>(shape.volume());
  auto w = dev.alloc<cxf>(shape.volume());
  RankKernelParams p;
  p.in_shape = shape;
  p.grid_blocks = default_grid_blocks(dev.spec());
  Rank1Kernel k(v, w, p, 256);
  const auto r = dev.launch(k);
  EXPECT_GT(r.coalesced_fraction, 0.99);
  EXPECT_EQ(r.dram_bytes, 2ull * shape.volume() * sizeof(cxf));
}

TEST(RankKernels, OccupancySustains128ThreadsPerSM) {
  // Section 3.1: 51-52 registers leave 128 threads per SM.
  Device dev(sim::geforce_8800_gtx());
  const Shape5 shape{{64, 2, 2, 2, 16}};
  auto v = dev.alloc<cxf>(shape.volume());
  auto w = dev.alloc<cxf>(shape.volume());
  RankKernelParams p;
  p.in_shape = shape;
  Rank1Kernel k(v, w, p, 256);
  const auto r = dev.launch(k);
  EXPECT_EQ(r.occupancy.active_threads, 128);
}

TEST(RankKernels, Rank2PreservesEnergy) {
  // Unitary-up-to-scale: ||out||^2 == L * ||in||^2 for the pure rank-2 FFT.
  Device dev(sim::geforce_8800_gt());
  const Shape5 shape{{32, 4, 1, 2, 16}};
  auto v = dev.alloc<cxf>(shape.volume());
  auto w = dev.alloc<cxf>(shape.volume());
  const auto input = random_complex<float>(shape.volume(), 11);
  dev.h2d(v, std::span<const cxf>(input));
  RankKernelParams p;
  p.in_shape = shape;
  p.grid_blocks = 4;
  Rank2Kernel k(v, w, p);
  dev.launch(k);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), w);
  double ein = 0.0;
  double eout = 0.0;
  for (const auto& z : input) ein += z.norm2();
  for (const auto& z : out) eout += z.norm2();
  EXPECT_NEAR(eout / (16.0 * ein), 1.0, 1e-4);
}

}  // namespace
}  // namespace repro::gpufft
