// On-card convolution/correlation (the Section 4.4 confinement pipeline).
#include "gpufft/convolution.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"

namespace repro::gpufft {
namespace {

/// Direct circular correlation: out[d] = sum_t s[t+d] * conj(f[t]).
std::vector<cxf> direct_correlation(const std::vector<cxf>& s,
                                    const std::vector<cxf>& f, Shape3 shape) {
  std::vector<cxf> out(shape.volume());
  for (std::size_t dz = 0; dz < shape.nz; ++dz) {
    for (std::size_t dy = 0; dy < shape.ny; ++dy) {
      for (std::size_t dx = 0; dx < shape.nx; ++dx) {
        cxd acc{0, 0};
        for (std::size_t z = 0; z < shape.nz; ++z) {
          for (std::size_t y = 0; y < shape.ny; ++y) {
            for (std::size_t x = 0; x < shape.nx; ++x) {
              const auto sv = s[shape.at((x + dx) % shape.nx,
                                         (y + dy) % shape.ny,
                                         (z + dz) % shape.nz)];
              const auto fv = f[shape.at(x, y, z)];
              acc += cxd{sv.re, sv.im} * cxd{fv.re, -fv.im};
            }
          }
        }
        out[shape.at(dx, dy, dz)] = {static_cast<float>(acc.re),
                                     static_cast<float>(acc.im)};
      }
    }
  }
  return out;
}

TEST(Convolution, MatchesDirectCorrelation) {
  const Shape3 shape = cube(16);
  const auto signal = random_complex<float>(shape.volume(), 1);
  const auto filter = random_complex<float>(shape.volume(), 2);

  Device dev(sim::geforce_8800_gts());
  Convolution3D conv(dev, shape);
  conv.set_filter(filter);
  const auto fast = conv.correlate(signal);
  const auto ref = direct_correlation(signal, filter, shape);
  EXPECT_LT(rel_l2_error<float>(fast, ref), 1e-3);
}

TEST(Convolution, BestTranslationFindsPlantedPeak) {
  // Plant the filter inside the signal at a known offset: correlation must
  // peak exactly there.
  const Shape3 shape = cube(32);
  const std::size_t off_x = 5;
  const std::size_t off_y = 12;
  const std::size_t off_z = 20;

  SplitMix64 rng(33);
  std::vector<cxf> filter(shape.volume());
  for (std::size_t i = 0; i < 200; ++i) {
    filter[rng.below(shape.volume())] = {1.0f, 0.0f};
  }
  std::vector<cxf> signal(shape.volume());
  for (std::size_t z = 0; z < shape.nz; ++z) {
    for (std::size_t y = 0; y < shape.ny; ++y) {
      for (std::size_t x = 0; x < shape.nx; ++x) {
        signal[shape.at((x + off_x) % shape.nx, (y + off_y) % shape.ny,
                        (z + off_z) % shape.nz)] = filter[shape.at(x, y, z)];
      }
    }
  }

  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, shape);
  conv.set_filter(filter);
  const BestMatch best = conv.best_translation(signal);
  EXPECT_EQ(best.index, shape.at(off_x, off_y, off_z));
}

TEST(Convolution, ConfinementMovesLessData) {
  // Section 4.4: the confined path ships the volume up once and only a
  // tiny candidate list back.
  const Shape3 shape = cube(32);
  const auto signal = random_complex<float>(shape.volume(), 3);
  const auto filter = random_complex<float>(shape.volume(), 4);

  Device dev(sim::geforce_8800_gtx());
  Convolution3D conv(dev, shape);
  conv.set_filter(filter);

  dev.reset_clock();
  conv.best_translation(signal);
  const auto d2h_confined = dev.d2h_bytes();

  dev.reset_clock();
  conv.correlate(signal);
  const auto d2h_full = dev.d2h_bytes();

  EXPECT_LT(d2h_confined, d2h_full / 100);
}

TEST(Convolution, ArgmaxMatchesHostScan) {
  const Shape3 shape = cube(16);
  const auto signal = random_complex<float>(shape.volume(), 5);
  const auto filter = random_complex<float>(shape.volume(), 6);
  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, shape);
  conv.set_filter(filter);
  const auto volume = conv.correlate(signal);
  const BestMatch best = conv.best_translation(signal);
  std::size_t host_best = 0;
  for (std::size_t i = 1; i < volume.size(); ++i) {
    if (volume[i].re > volume[host_best].re) host_best = i;
  }
  EXPECT_EQ(best.index, host_best);
  EXPECT_NEAR(best.score, volume[host_best].re,
              1e-3f * std::abs(volume[host_best].re) + 1e-3f);
}

TEST(Convolution, RealModeMatchesComplexMode) {
  // Real-valued grids through the r2c/c2r pipeline must score like the
  // complex pipeline (both FFT paths carry ~1e-6 relative rounding).
  const Shape3 shape = cube(32);
  SplitMix64 rng(17);
  std::vector<float> signal(shape.volume());
  std::vector<float> filter(shape.volume());
  for (auto& v : signal) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : filter) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<cxf> csignal(shape.volume());
  std::vector<cxf> cfilter(shape.volume());
  for (std::size_t i = 0; i < shape.volume(); ++i) {
    csignal[i] = {signal[i], 0.0f};
    cfilter[i] = {filter[i], 0.0f};
  }

  Device dev(sim::geforce_8800_gts());
  Convolution3D cconv(dev, shape);
  cconv.set_filter(cfilter);
  const auto cscores = cconv.correlate(csignal);

  Convolution3D rconv(dev, shape, Layout::RealHalfSpectrum);
  rconv.set_filter_real(filter);
  const auto rscores = rconv.correlate_real(signal);

  std::vector<cxf> rc(rscores.size());
  for (std::size_t i = 0; i < rscores.size(); ++i) rc[i] = {rscores[i], 0.0f};
  std::vector<cxf> cc(cscores.size());
  for (std::size_t i = 0; i < cscores.size(); ++i) cc[i] = {cscores[i].re, 0.0f};
  EXPECT_LT(rel_l2_error<float>(rc, cc), 1e-4);
}

TEST(Convolution, RealBestTranslationFindsPlantedPeak) {
  // Odd X offset on purpose: the winning score then sits in a packed
  // slot's .im half, exercising the packed argmax's index reconstruction.
  const Shape3 shape = cube(32);
  const std::size_t off_x = 7;
  const std::size_t off_y = 12;
  const std::size_t off_z = 21;

  SplitMix64 rng(34);
  std::vector<float> filter(shape.volume());
  for (std::size_t i = 0; i < 200; ++i) {
    filter[rng.below(shape.volume())] = 1.0f;
  }
  std::vector<float> signal(shape.volume());
  for (std::size_t z = 0; z < shape.nz; ++z) {
    for (std::size_t y = 0; y < shape.ny; ++y) {
      for (std::size_t x = 0; x < shape.nx; ++x) {
        signal[shape.at((x + off_x) % shape.nx, (y + off_y) % shape.ny,
                        (z + off_z) % shape.nz)] = filter[shape.at(x, y, z)];
      }
    }
  }

  Device dev(sim::geforce_8800_gt());
  Convolution3D conv(dev, shape, Layout::RealHalfSpectrum);
  conv.set_filter_real(filter);
  const BestMatch best = conv.best_translation_real(signal);
  EXPECT_EQ(best.index, shape.at(off_x, off_y, off_z));
}

TEST(Convolution, RealPackedArgmaxMatchesHostScan) {
  const Shape3 shape = cube(32);
  SplitMix64 rng(35);
  std::vector<float> signal(shape.volume());
  std::vector<float> filter(shape.volume());
  for (auto& v : signal) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : filter) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Device dev(sim::geforce_8800_gtx());
  Convolution3D conv(dev, shape, Layout::RealHalfSpectrum);
  conv.set_filter_real(filter);
  const auto volume = conv.correlate_real(signal);
  const BestMatch best = conv.best_translation_real(signal);
  std::size_t host_best = 0;
  for (std::size_t i = 1; i < volume.size(); ++i) {
    if (volume[i] > volume[host_best]) host_best = i;
  }
  EXPECT_EQ(best.index, host_best);
  EXPECT_NEAR(best.score, volume[host_best],
              1e-3f * std::abs(volume[host_best]) + 1e-3f);
}

TEST(Convolution, LayoutGuardsEntryPoints) {
  const Shape3 shape = cube(32);
  Device dev(sim::geforce_8800_gt());
  Convolution3D cconv(dev, shape);
  Convolution3D rconv(dev, shape, Layout::RealHalfSpectrum);
  const std::vector<float> reals(shape.volume());
  const std::vector<cxf> cplx(shape.volume());
  EXPECT_THROW(cconv.set_filter_real(reals), Error);
  EXPECT_THROW(rconv.set_filter(cplx), Error);
}

TEST(PointwiseMultiply, ConjugateOption) {
  Device dev(sim::geforce_8800_gt());
  const std::size_t n = 1024;
  auto a = dev.alloc<cxf>(n);
  auto b = dev.alloc<cxf>(n);
  auto out = dev.alloc<cxf>(n);
  const auto va = random_complex<float>(n, 7);
  const auto vb = random_complex<float>(n, 8);
  dev.h2d(a, std::span<const cxf>(va));
  dev.h2d(b, std::span<const cxf>(vb));

  PointwiseMultiplyKernel plain(a, b, out, n, false, 8);
  dev.launch(plain);
  std::vector<cxf> r(n);
  dev.d2h(std::span<cxf>(r), out);
  for (std::size_t i = 0; i < n; i += 111) {
    const cxf expect = va[i] * vb[i];
    EXPECT_NEAR(r[i].re, expect.re, 1e-5f);
  }

  PointwiseMultiplyKernel conj(a, b, out, n, true, 8);
  dev.launch(conj);
  dev.d2h(std::span<cxf>(r), out);
  for (std::size_t i = 0; i < n; i += 111) {
    const cxf expect = va[i] * vb[i].conj();
    EXPECT_NEAR(r[i].im, expect.im, 1e-5f);
  }
}

}  // namespace
}  // namespace repro::gpufft
