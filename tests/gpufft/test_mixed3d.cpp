// Arbitrary-size GPU plans: the mixed-radix / Bluestein Mixed3D plan must
// reproduce the host library bit-for-bit for every size class (7-smooth,
// Bluestein axes, pow2), under both row layouts, and the streamed plans
// must accept non-pow2 extents through the same slab machinery.
#include "gpufft/mixed3d.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/outofcore.h"
#include "gpufft/plan.h"
#include "gpufft/registry.h"
#include "gpufft/sharded.h"

namespace repro::gpufft {
namespace {

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

std::vector<cxf> host_fft3d(const std::vector<cxf>& input, Shape3 shape,
                            Direction dir) {
  std::vector<cxf> ref = input;
  fft::Plan3D<float> plan(shape, dir);
  plan.execute(ref);
  return ref;
}

std::vector<cxf> mixed_fft3d(const std::vector<cxf>& input, Shape3 shape,
                             Direction dir, const TuneConfig& tune = {},
                             std::vector<StepTiming>* steps = nullptr) {
  Device dev(sim::geforce_8800_gts());
  MixedFft3D plan(dev, shape, dir, tune);
  std::vector<cxf> data = input;
  auto s = plan.execute_host(std::span<cxf>(data));
  if (steps != nullptr) *steps = std::move(s);
  return data;
}

/// Every size class one axis can fall into: 7-smooth mixed-radix,
/// Bluestein (prime and 2*prime factors), and pow2 (which must also run
/// through the generic machinery unchanged).
class MixedShapes : public ::testing::TestWithParam<Shape3> {};

TEST_P(MixedShapes, BitIdenticalToHostBothDirections) {
  const Shape3 shape = GetParam();
  const auto input =
      random_complex<float>(shape.volume(), 7 + shape.nx);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto out = mixed_fft3d(input, shape, dir);
    const auto ref = host_fft3d(input, shape, dir);
    EXPECT_TRUE(bit_identical(out, ref))
        << shape.nx << "x" << shape.ny << "x" << shape.nz << " dir="
        << (dir == Direction::Forward ? "fwd" : "inv")
        << " rel_l2=" << rel_l2_error<float>(out, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MixedShapes,
    ::testing::Values(Shape3{20, 12, 6},    // 7-smooth, all axes distinct
                      Shape3{100, 12, 6},   // 2^2*5^2 rows
                      Shape3{15, 15, 15},   // odd 7-smooth cube
                      Shape3{33, 8, 8},     // Bluestein X (3*11)
                      Shape3{97, 8, 4},     // Bluestein X (prime)
                      Shape3{8, 11, 13},    // Bluestein Y and Z
                      Shape3{32, 16, 8}));  // pow2 through the mixed path

TEST(Mixed3D, PaddedLayoutBitIdenticalToDense) {
  const Shape3 shape{100, 12, 6};
  const auto input = random_complex<float>(shape.volume(), 41);
  TuneConfig padded;
  padded.pitch = PitchMode::Padded;
  const auto dense = mixed_fft3d(input, shape, Direction::Forward);
  const auto pad = mixed_fft3d(input, shape, Direction::Forward, padded);
  EXPECT_TRUE(bit_identical(dense, pad))
      << "padding only moves addresses, never values";
}

TEST(Mixed3D, PaddedPitchRoundsRowsUpTo16) {
  Device dev(sim::geforce_8800_gts());
  TuneConfig padded;
  padded.pitch = PitchMode::Padded;
  const Shape3 shape{100, 12, 6};
  MixedFft3D plan(dev, shape, Direction::Forward, padded);
  EXPECT_EQ(plan.row_pitch(), 112u);
  EXPECT_EQ(plan.desc().buffer_elements(), 112u * 12u * 6u);
  MixedFft3D dense(dev, shape, Direction::Forward);
  EXPECT_EQ(dense.row_pitch(), 100u);
  EXPECT_EQ(dense.desc().buffer_elements(), shape.volume());
}

TEST(Mixed3D, StepNamesTellTheEngineApart) {
  std::vector<StepTiming> steps;
  mixed_fft3d(random_complex<float>(20 * 12 * 6, 3), Shape3{20, 12, 6},
              Direction::Forward, {}, &steps);
  ASSERT_EQ(steps.size(), 3u);
  for (const auto& s : steps) {
    EXPECT_NE(s.name.find("mixed-radix lines"), std::string::npos) << s.name;
  }
  mixed_fft3d(random_complex<float>(33 * 8 * 8, 4), Shape3{33, 8, 8},
              Direction::Forward, {}, &steps);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_NE(steps[0].name.find("Bluestein"), std::string::npos)
      << steps[0].name;
  EXPECT_NE(steps[0].name.find("m=128"), std::string::npos)
      << "33 pads to the 128-point convolution (next pow2 >= 2*33-1)";
}

TEST(Mixed3D, DenseRouterPicksTheRightKind) {
  // Non-pow2 shapes route to the mixed plan, pow2 shapes keep the exact
  // five-step description they had before the mixed plan existed.
  EXPECT_EQ(PlanDesc::dense3d(Shape3{100, 12, 6}, Direction::Forward).kind,
            PlanKind::Mixed3D);
  EXPECT_EQ(PlanDesc::dense3d(Shape3{20, 12, 6}, Direction::Inverse).kind,
            PlanKind::Mixed3D);
  const PlanDesc pow2 =
      PlanDesc::dense3d(cube(64), Direction::Forward);
  EXPECT_EQ(pow2.kind, PlanKind::Bandwidth3D);
  EXPECT_EQ(pow2.to_string(),
            PlanDesc::bandwidth3d(cube(64), Direction::Forward).to_string());
}

TEST(Mixed3D, RegistryServesMixedPlans) {
  Device dev(sim::geforce_8800_gts());
  const Shape3 shape{20, 12, 6};
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::dense3d(shape, Direction::Forward));
  const auto input = random_complex<float>(shape.volume(), 9);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  EXPECT_TRUE(
      bit_identical(data, host_fft3d(input, shape, Direction::Forward)));
}

TEST(Mixed3D, FiveStepGuardNamesTheEscapeHatch) {
  Device dev(sim::geforce_8800_gts());
  try {
    BandwidthFft3D plan(dev, Shape3{100, 16, 16}, Direction::Forward);
    FAIL() << "the five-step plan must reject non-pow2 X";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mixed-radix"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Streamed plans over non-pow2 extents
// ---------------------------------------------------------------------------

std::vector<cxf> out_of_core_run(std::size_t n, std::size_t splits,
                                 Direction dir,
                                 const std::vector<cxf>& input) {
  Device dev(sim::geforce_8800_gts());
  OutOfCoreFft3D plan(dev, n, splits, dir);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  return data;
}

TEST(MixedStreamed, OutOfCoreMatchesHostNonPow2) {
  const std::size_t n = 60;  // 2^2*3*5: slabs run the mixed plan
  const auto input = random_complex<float>(n * n * n, 11);
  for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
    const auto out = out_of_core_run(n, 4, dir, input);
    const auto ref = host_fft3d(input, cube(n), dir);
    EXPECT_LT(rel_l2_error<float>(out, ref),
              fft_error_bound<float>(n * n * n));
  }
}

TEST(MixedStreamed, ShardedBitIdenticalToOutOfCoreNonPow2) {
  const std::size_t n = 96;  // 2^5*3: non-pow2, every phase extent divides
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 23);
  const auto ref = out_of_core_run(n, shards, Direction::Forward, input);
  for (const std::size_t devices : {1u, 2u, 3u, 4u}) {
    sim::DeviceGroup group(devices, sim::geforce_8800_gts());
    ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    std::vector<cxf> data = input;
    plan.execute(std::span<cxf>(data));
    EXPECT_TRUE(bit_identical(data, ref)) << devices << " devices";
  }
}

TEST(MixedStreamed, ShardedGuardsStayTyped) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  try {
    ShardedFft3DPlan plan(group, 100, 5, Direction::Forward);
    FAIL() << "non-pow2 shard counts must be rejected";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("power-of-two"),
              std::string::npos)
        << e.what();
  }
  try {
    ShardedRealFft3DPlan plan(group, 100, 4, Direction::Forward);
    FAIL() << "real sharded plans still need pow2 extents";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("complex"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace repro::gpufft
