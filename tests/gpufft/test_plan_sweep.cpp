// Parameterized sweeps of the five-step plan over shapes, directions and
// twiddle configurations — the broad-coverage net behind the targeted
// tests in test_plan3d_gpu.cpp.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/outofcore.h"
#include "gpufft/plan.h"

namespace repro::gpufft {
namespace {

using ShapeParam = std::tuple<std::size_t, std::size_t, std::size_t>;

class PlanShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(PlanShapes, ForwardMatchesHost) {
  const auto [nx, ny, nz] = GetParam();
  const Shape3 shape{nx, ny, nz};
  const auto input =
      random_complex<float>(shape.volume(), nx * 7 + ny * 3 + nz);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_8800_gt());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  BandwidthFft3D plan(dev, shape, Direction::Forward);
  plan.execute(data);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref),
            fft_error_bound<float>(shape.volume()));
}

INSTANTIATE_TEST_SUITE_P(
    MixedShapes, PlanShapes,
    ::testing::Values(ShapeParam{16, 16, 16}, ShapeParam{16, 32, 64},
                      ShapeParam{64, 16, 32}, ShapeParam{32, 64, 16},
                      ShapeParam{128, 16, 16}, ShapeParam{16, 128, 32},
                      ShapeParam{256, 16, 16}, ShapeParam{32, 32, 128}));

class PlanTwiddleConfigs
    : public ::testing::TestWithParam<std::pair<TwiddleSource, TwiddleSource>> {
};

TEST_P(PlanTwiddleConfigs, AllConfigurationsAgree) {
  const auto [coarse, fine] = GetParam();
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 11);

  auto run = [&](BandwidthPlanOptions opt) {
    Device dev(sim::geforce_8800_gts());
    auto data = dev.alloc<cxf>(shape.volume());
    dev.h2d(data, std::span<const cxf>(input));
    BandwidthFft3D plan(dev, shape, Direction::Forward, opt);
    plan.execute(data);
    std::vector<cxf> out(shape.volume());
    dev.d2h(std::span<cxf>(out), data);
    return out;
  };

  const auto reference = run(BandwidthPlanOptions{});
  BandwidthPlanOptions opt;
  opt.coarse_twiddles = coarse;
  opt.fine_twiddles = fine;
  const auto variant = run(opt);
  EXPECT_LT(rel_l2_error<float>(variant, reference), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    TwiddlePairs, PlanTwiddleConfigs,
    ::testing::Values(
        std::pair{TwiddleSource::Constant, TwiddleSource::Registers},
        std::pair{TwiddleSource::Texture, TwiddleSource::Constant},
        std::pair{TwiddleSource::Recompute, TwiddleSource::Recompute}));

class OutOfCoreSplits : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OutOfCoreSplits, MatchesHostForEverySplit) {
  const std::size_t splits = GetParam();
  const std::size_t n = 64;
  auto data = random_complex<float>(n * n * n, splits);
  std::vector<cxf> ref = data;
  fft::Plan3D<float> host(cube(n), fft::Direction::Forward);
  host.execute(ref);

  Device dev(sim::geforce_8800_gts());
  OutOfCoreFft3D plan(dev, n, splits, Direction::Forward);
  plan.execute(std::span<cxf>(data));
  EXPECT_LT(rel_l2_error<float>(data, ref),
            fft_error_bound<float>(n * n * n));
}

INSTANTIATE_TEST_SUITE_P(Splits, OutOfCoreSplits,
                         ::testing::Values(2, 4, 8, 16));

TEST(PlanSweep, GridBlockOverrideStaysCorrect) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 21);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);
  for (unsigned grid : {1u, 7u, 48u, 96u}) {
    Device dev(sim::geforce_8800_gtx());
    auto data = dev.alloc<cxf>(shape.volume());
    dev.h2d(data, std::span<const cxf>(input));
    BandwidthPlanOptions opt;
    opt.grid_blocks = grid;
    BandwidthFft3D plan(dev, shape, Direction::Forward, opt);
    plan.execute(data);
    std::vector<cxf> out(shape.volume());
    dev.d2h(std::span<cxf>(out), data);
    EXPECT_LT(rel_l2_error<float>(out, ref),
              fft_error_bound<float>(shape.volume()))
        << "grid=" << grid;
  }
}

TEST(PlanSweep, FewBlocksAreSlower) {
  // Occupancy sanity: a 4-block launch cannot keep 14 SMs busy.
  const Shape3 shape = cube(64);
  auto run = [&](unsigned grid) {
    Device dev(sim::geforce_8800_gt());
    auto data = dev.alloc<cxf>(shape.volume());
    BandwidthPlanOptions opt;
    opt.grid_blocks = grid;
    BandwidthFft3D plan(dev, shape, Direction::Forward, opt);
    plan.execute(data);
    return plan.last_total_ms();
  };
  EXPECT_GT(run(4), 2.0 * run(42));
}

}  // namespace
}  // namespace repro::gpufft
