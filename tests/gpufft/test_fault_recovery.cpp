// End-to-end fault recovery across the plan stack: checksummed re-staging
// under transient/corrupt PCIe faults (bit-identical results), device-lost
// failover in the sharded plans, RAII lease hygiene when an execute
// throws, and the registry/cache byte watermark.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "gpufft/cache.h"
#include "gpufft/outofcore.h"
#include "gpufft/registry.h"
#include "gpufft/sharded.h"
#include "sim/topology/peer_mesh.h"

namespace repro::gpufft {
namespace {

using sim::FaultKind;

bool bit_identical(const std::vector<cxf>& a, const std::vector<cxf>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

/// Fault-free reference: run `desc` on a fresh device via execute_host.
std::vector<cxf> single_device_reference(const PlanDesc& desc,
                                         const std::vector<cxf>& input) {
  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  return data;
}

// ---- Transient / corruption recovery across every plan kind ----

/// Run `desc` twice on fresh devices — fault-free, then with a window of
/// `kind` faults armed — and require bit-identical output plus evidence
/// the recovery policy actually acted.
void expect_recovered_bit_identical(const PlanDesc& desc,
                                    const std::vector<cxf>& input,
                                    FaultKind kind, std::uint64_t nth,
                                    std::uint64_t count) {
  const auto ref = single_device_reference(desc, input);

  Device dev(sim::geforce_8800_gts());
  auto plan = PlanRegistry::of(dev).get_or_create(desc);
  const RecoveryCounters before = recovery_counters();
  dev.faults().arm(kind, nth, count);
  std::vector<cxf> data = input;
  plan->execute_host(std::span<cxf>(data));
  const RecoveryCounters after = recovery_counters();

  EXPECT_TRUE(bit_identical(data, ref)) << desc.to_string();
  EXPECT_EQ(dev.faults().fired(kind), count) << desc.to_string();
  if (kind == FaultKind::TransferTransient) {
    EXPECT_EQ(after.transient_retries - before.transient_retries, count);
  } else {
    EXPECT_EQ(after.corruption_restages - before.corruption_restages, count);
  }
}

TEST(FaultRecovery, TransientRetriesLeaveEveryPlanKindBitIdentical) {
  const std::size_t n = 32;
  const auto cube_input = random_complex<float>(n * n * n, 101);
  const auto real_input =
      random_complex<float>((n / 2 + 1) * n * n, 102);
  // Three consecutive failures of one transfer: recovery needs attempts
  // 2, 3 and 4 of the staged loop (max_attempts = 4).
  expect_recovered_bit_identical(
      PlanDesc::bandwidth3d(cube(n), Direction::Forward, Precision::F32),
      cube_input, FaultKind::TransferTransient, 1, 3);
  expect_recovered_bit_identical(
      PlanDesc::real3d(cube(n), Direction::Forward), real_input,
      FaultKind::TransferTransient, 2, 3);
  expect_recovered_bit_identical(
      PlanDesc::out_of_core(n, 4, Direction::Forward), cube_input,
      FaultKind::TransferTransient, 5, 3);
}

TEST(FaultRecovery, CorruptionRestagesLeaveEveryPlanKindBitIdentical) {
  const std::size_t n = 32;
  const auto cube_input = random_complex<float>(n * n * n, 103);
  const auto real_input =
      random_complex<float>((n / 2 + 1) * n * n, 104);
  expect_recovered_bit_identical(
      PlanDesc::bandwidth3d(cube(n), Direction::Forward, Precision::F32),
      cube_input, FaultKind::TransferCorrupt, 1, 1);
  expect_recovered_bit_identical(
      PlanDesc::real3d(cube(n), Direction::Inverse), real_input,
      FaultKind::TransferCorrupt, 2, 1);
  expect_recovered_bit_identical(
      PlanDesc::out_of_core(n, 4, Direction::Inverse), cube_input,
      FaultKind::TransferCorrupt, 7, 2);
}

TEST(FaultRecovery, ShardedTransientAndCorruptionAreBitIdentical) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 105);

  sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan ref_plan(ref_group, n, shards, Direction::Forward);
  std::vector<cxf> ref = input;
  ref_plan.execute(std::span<cxf>(ref));

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  const RecoveryCounters before = recovery_counters();
  group.faults(1).arm(FaultKind::TransferTransient, 3, 3);
  group.faults(0).arm(FaultKind::TransferCorrupt, 2, 1);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  const RecoveryCounters after = recovery_counters();

  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_EQ(after.transient_retries - before.transient_retries, 3u);
  EXPECT_EQ(after.corruption_restages - before.corruption_restages, 1u);
  EXPECT_EQ(after.device_lost_failovers, before.device_lost_failovers);
}

TEST(FaultRecovery, ShardedRealTransientIsBitIdentical) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>((n / 2 + 1) * n * n, 106);

  sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan ref_plan(ref_group, n, shards, Direction::Forward);
  std::vector<cxf> ref = input;
  ref_plan.execute(std::span<cxf>(ref));

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan plan(group, n, shards, Direction::Forward);
  group.faults(0).arm(FaultKind::TransferTransient, 4, 2);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  EXPECT_TRUE(bit_identical(data, ref));
}

// ---- Device-lost failover ----

/// Ops per execute on member `victim` (occurrence domain of DeviceLost),
/// measured with a disarmed injector attached — counting is identical to
/// an armed run up to the first fire.
std::uint64_t probe_ops_per_execute(std::size_t n, std::size_t shards,
                                    std::size_t devices, std::size_t victim,
                                    const std::vector<cxf>& input,
                                    std::vector<cxf>* ref_out) {
  sim::DeviceGroup group(devices, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  auto& inj = group.faults(victim);
  inj.reset_counters();
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  if (ref_out != nullptr) *ref_out = std::move(data);
  return inj.occurrences(FaultKind::DeviceLost);
}

TEST(FaultRecovery, DeviceLostAtAnyPhaseYieldsBitIdenticalResult) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 107);
  std::vector<cxf> ref;
  const std::uint64_t ops =
      probe_ops_per_execute(n, shards, 2, 1, input, &ref);
  ASSERT_GT(ops, 2u);

  // Kill member 1 early (lease allocation / first uploads), mid-run
  // (around the exchange), and on its very last operation (deep into
  // phase 2, after host_data was partially overwritten).
  for (const std::uint64_t nth : {std::uint64_t{1}, ops / 2, ops}) {
    sim::DeviceGroup group(2, sim::geforce_8800_gts());
    ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
    const RecoveryCounters before = recovery_counters();
    group.faults(1).arm(FaultKind::DeviceLost, nth);
    std::vector<cxf> data = input;
    const ShardedTiming t = plan.execute(std::span<cxf>(data));
    const RecoveryCounters after = recovery_counters();

    EXPECT_TRUE(bit_identical(data, ref)) << "nth=" << nth;
    EXPECT_EQ(after.device_lost_failovers - before.device_lost_failovers,
              1u);
    EXPECT_TRUE(group.device(1).lost());
    EXPECT_EQ(group.alive_count(), 1u);
    // The recovered run kept per-ordinal reporting: the survivor's rows
    // carry the whole volume, the lost card contributes nothing.
    ASSERT_EQ(t.devices.size(), 2u);
    EXPECT_GT(t.devices[0].busy_ms(), 0.0);
    EXPECT_EQ(t.devices[1].busy_ms(), 0.0);

    // The group keeps working for the next volume without re-planning.
    std::vector<cxf> again = input;
    plan.execute(std::span<cxf>(again));
    EXPECT_TRUE(bit_identical(again, ref)) << "nth=" << nth;
  }
}

TEST(FaultRecovery, DeviceLostFallsBackToDividingSurvivorSubset) {
  // Four cards, shards = 4: losing one leaves 3 survivors, which divides
  // neither shards nor n/shards — the failover must shrink to 2.
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 108);
  std::vector<cxf> ref;
  probe_ops_per_execute(n, shards, 4, 3, input, &ref);

  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, shards, Direction::Forward);
  group.faults(3).arm(FaultKind::DeviceLost, 1);
  std::vector<cxf> data = input;
  const ShardedTiming t = plan.execute(std::span<cxf>(data));

  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_EQ(group.alive_count(), 3u);
  // Members 0 and 1 carried the rerun; member 2 sat out (3 does not
  // divide the phase extents), member 3 is dead.
  EXPECT_GT(t.devices[0].busy_ms(), 0.0);
  EXPECT_GT(t.devices[1].busy_ms(), 0.0);
  EXPECT_EQ(t.devices[2].busy_ms(), 0.0);
  EXPECT_EQ(t.devices[3].busy_ms(), 0.0);
}

TEST(FaultRecovery, DeviceLostReshardsOverPeerMeshExchange) {
  // The failover path on a peer fabric: the all-to-all rides d2d legs,
  // and a card dying mid-exchange must re-shard onto a surviving subset
  // that still routes peer-to-peer (mesh {0, 2} after losing 1).
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>(n * n * n, 109);

  // Probe the occurrence domain and the reference on an identical mesh
  // (peer runs count different ops than host-staged ones).
  std::vector<cxf> ref;
  std::uint64_t ops = 0;
  {
    sim::DeviceGroup mesh(4, sim::geforce_8800_gts(),
                          std::make_shared<sim::PeerMeshTopology>(4));
    ShardedFft3DPlan plan(mesh, n, shards, Direction::Forward);
    auto& inj = mesh.faults(1);
    inj.reset_counters();
    std::vector<cxf> data = input;
    plan.execute(std::span<cxf>(data));
    ASSERT_EQ(plan.last_layout().exchange, Exchange::Peer);
    ref = std::move(data);
    ops = inj.occurrences(FaultKind::DeviceLost);
  }
  ASSERT_GT(ops, 2u);

  for (const std::uint64_t nth : {std::uint64_t{1}, ops / 2, ops}) {
    sim::DeviceGroup mesh(4, sim::geforce_8800_gts(),
                          std::make_shared<sim::PeerMeshTopology>(4));
    ShardedFft3DPlan plan(mesh, n, shards, Direction::Forward);
    const RecoveryCounters before = recovery_counters();
    mesh.faults(1).arm(FaultKind::DeviceLost, nth);
    std::vector<cxf> data = input;
    const ShardedTiming t = plan.execute(std::span<cxf>(data));
    const RecoveryCounters after = recovery_counters();

    EXPECT_TRUE(bit_identical(data, ref)) << "nth=" << nth;
    EXPECT_GE(after.device_lost_failovers - before.device_lost_failovers,
              1u);
    EXPECT_TRUE(mesh.device(1).lost());
    // The rerun still used direct legs over the surviving pair — not a
    // silent host-staged downgrade.
    EXPECT_EQ(plan.last_layout().exchange, Exchange::Peer);
    EXPECT_EQ(plan.last_layout().members, 2u);
    ASSERT_EQ(t.devices.size(), 4u);
    EXPECT_GT(t.devices[0].busy_ms(), 0.0);
    EXPECT_EQ(t.devices[1].busy_ms(), 0.0);

    // The reduced fleet keeps serving volumes.
    std::vector<cxf> again = input;
    plan.execute(std::span<cxf>(again));
    EXPECT_TRUE(bit_identical(again, ref)) << "nth=" << nth;
  }
}

TEST(FaultRecovery, ShardedRealDeviceLostFailsOver) {
  const std::size_t n = 32;
  const std::size_t shards = 4;
  const auto input = random_complex<float>((n / 2 + 1) * n * n, 109);

  sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan ref_plan(ref_group, n, shards, Direction::Inverse);
  std::vector<cxf> ref = input;
  ref_plan.execute(std::span<cxf>(ref));

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedRealFft3DPlan plan(group, n, shards, Direction::Inverse);
  group.faults(0).arm(FaultKind::DeviceLost, 40);
  std::vector<cxf> data = input;
  plan.execute(std::span<cxf>(data));
  EXPECT_TRUE(bit_identical(data, ref));
  EXPECT_EQ(group.alive_count(), 1u);
}

TEST(FaultRecovery, AllDevicesLostPropagatesTypedError) {
  const std::size_t n = 32;
  const auto input = random_complex<float>(n * n * n, 110);
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ShardedFft3DPlan plan(group, n, 4, Direction::Forward);
  group.faults(0).arm(FaultKind::DeviceLost, 1);
  group.faults(1).arm(FaultKind::DeviceLost, 1);
  std::vector<cxf> data = input;
  EXPECT_THROW(plan.execute(std::span<cxf>(data)), sim::DeviceLostError);
  EXPECT_EQ(group.alive_count(), 0u);
}

// ---- RAII hygiene: a throwing execute leaks nothing ----

TEST(FaultRecovery, ThrowingExecuteReleasesLeasesAndTwiddles) {
  const std::size_t n = 32;
  const auto input = random_complex<float>(n * n * n, 111);
  Device dev(sim::geforce_8800_gts());
  auto& cache = ResourceCache::of(dev);
  auto plan = PlanRegistry::of(dev).get_or_create(
      PlanDesc::out_of_core(n, 4, Direction::Forward));

  std::vector<cxf> ref = input;
  plan->execute_host(std::span<cxf>(ref));
  EXPECT_EQ(cache.workspace_in_use_bytes(), 0u);
  const std::size_t tables = cache.twiddle_tables();

  // Unrecoverable corruption: every transfer delivers a damaged payload,
  // so the staged loop exhausts its re-stages and throws.
  dev.faults().arm(FaultKind::TransferCorrupt, 1, std::uint64_t{1} << 40);
  std::vector<cxf> data = input;
  try {
    plan->execute_host(std::span<cxf>(data));
    FAIL() << "expected TransferCorruptionError";
  } catch (const sim::TransferCorruptionError& e) {
    EXPECT_EQ(e.attempts(), 4);
    // The plan layer stamped its label onto the in-flight error.
    EXPECT_NE(std::string(e.what()).find("plan["), std::string::npos);
  }
  EXPECT_EQ(cache.workspace_in_use_bytes(), 0u);
  EXPECT_EQ(cache.twiddle_tables(), tables);

  // Same exhaustion for transients.
  dev.faults().disarm_all();
  dev.faults().arm(FaultKind::TransferTransient, 1, std::uint64_t{1} << 40);
  data = input;
  EXPECT_THROW(plan->execute_host(std::span<cxf>(data)),
               sim::TransientTransferError);
  EXPECT_EQ(cache.workspace_in_use_bytes(), 0u);

  // After disarming the plan works again, bit-identically.
  dev.faults().disarm_all();
  data = input;
  plan->execute_host(std::span<cxf>(data));
  EXPECT_TRUE(bit_identical(data, ref));
}

// ---- Memory watermark ----

TEST(FaultRecovery, WatermarkEvictsInsteadOfGrowing) {
  Device dev(sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(dev);
  const std::size_t budget = 6u << 20;  // 6 MB
  reg.set_byte_watermark(budget);
  EXPECT_EQ(ResourceCache::of(dev).byte_watermark(), budget);

  const RecoveryCounters before = recovery_counters();
  const auto input = random_complex<float>(64 * 64 * 64, 112);
  for (int round = 0; round < 2; ++round) {
    for (const std::size_t n : {16u, 32u, 64u}) {
      for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
        auto plan = reg.get_or_create(
            PlanDesc::bandwidth3d(cube(n), dir, Precision::F32));
        std::vector<cxf> data(input.begin(),
                              input.begin() + n * n * n);
        plan->execute_host(std::span<cxf>(data));
      }
    }
  }
  const RecoveryCounters after = recovery_counters();
  EXPECT_LE(dev.peak_allocated_bytes(), budget);
  EXPECT_GT(after.watermark_evictions, before.watermark_evictions);

  // Still correct under the budget.
  auto plan = reg.get_or_create(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32));
  std::vector<cxf> data(input.begin(), input.begin() + 32 * 32 * 32);
  plan->execute_host(std::span<cxf>(data));
  const auto ref = single_device_reference(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32),
      std::vector<cxf>(input.begin(), input.begin() + 32 * 32 * 32));
  EXPECT_TRUE(bit_identical(data, ref));
}

TEST(FaultRecovery, GroupWatermarkBoundsPeakBytesInFlight) {
  // Many sharded shapes against a group registry: resident plans hold
  // full-volume host staging, so without a budget the working set climbs
  // with every distinct shape; the watermark must evict old plans instead
  // of letting the footprint grow past it — and never throw.
  const auto input = random_complex<float>(64 * 64 * 64, 113);
  auto stress = [&](PlanRegistry& reg) {
    for (int round = 0; round < 2; ++round) {
      for (const std::size_t n : {16u, 32u, 64u}) {
        for (const Direction dir :
             {Direction::Forward, Direction::Inverse}) {
          auto plan =
              reg.get_or_create(PlanDesc::sharded3d(n, 4, dir));
          std::vector<cxf> data(input.begin(),
                                input.begin() + n * n * n);
          plan->execute_host(std::span<cxf>(data));
        }
      }
    }
  };

  const std::size_t budget = 9u << 19;  // 4.5 MB

  // Control: without the watermark the stress exceeds the budget.
  sim::DeviceGroup loose(2, sim::geforce_8800_gts());
  stress(PlanRegistry::of(loose));
  EXPECT_GT(loose.peak_bytes_in_flight(), budget);

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(group);
  reg.set_byte_watermark(budget);
  const RecoveryCounters before = recovery_counters();
  stress(reg);
  const RecoveryCounters after = recovery_counters();

  EXPECT_LE(group.peak_bytes_in_flight(), budget);
  EXPECT_GT(reg.byte_evictions(), 0u);
  EXPECT_GT(after.watermark_evictions, before.watermark_evictions);

  // Evicted-and-rebuilt plans still agree with a fresh fleet.
  auto plan = reg.get_or_create(
      PlanDesc::sharded3d(32, 4, Direction::Forward));
  std::vector<cxf> data(input.begin(), input.begin() + 32 * 32 * 32);
  plan->execute_host(std::span<cxf>(data));

  sim::DeviceGroup fresh(2, sim::geforce_8800_gts());
  ShardedFft3DPlan fresh_plan(fresh, 32, 4, Direction::Forward);
  std::vector<cxf> ref(input.begin(), input.begin() + 32 * 32 * 32);
  fresh_plan.execute(std::span<cxf>(ref));
  EXPECT_TRUE(bit_identical(data, ref));
}

TEST(FaultRecovery, OomRecoveryEnrichedWithPlanLabel) {
  // Exhaust a card with an injected OOM during plan construction when
  // there is nothing left to evict: the error must escape with the plan
  // label and the allocator picture intact.
  Device dev(sim::geforce_8800_gts());
  auto& reg = PlanRegistry::of(dev);
  dev.faults().arm(FaultKind::AllocFail, 1, std::uint64_t{1} << 40);
  try {
    auto plan = reg.get_or_create(
        PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32));
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const sim::OutOfDeviceMemory& e) {
    EXPECT_TRUE(e.injected());
    EXPECT_NE(std::string(e.what()).find("while building plan ["),
              std::string::npos);
  }
  dev.faults().disarm_all();
  // Construction works after the pressure clears.
  auto plan = reg.get_or_create(
      PlanDesc::bandwidth3d(cube(32), Direction::Forward, Precision::F32));
  EXPECT_NE(plan, nullptr);
}

}  // namespace
}  // namespace repro::gpufft
