#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace repro {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"Model", "GFLOPS"});
  t.row({"8800 GT", "62.2"});
  t.row({"8800 GTX", "84.4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("8800 GTX"), std::string::npos);
  // Every data line starts at the same column for field 2.
  const auto p1 = s.find("62.2");
  const auto p2 = s.find("84.4");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  const auto col = [&s](std::size_t pos) {
    const auto nl = s.rfind('\n', pos);
    return pos - (nl == std::string::npos ? 0 : nl + 1);
  };
  EXPECT_EQ(col(p1), col(p2));
}

TEST(TextTable, FormatsFixedPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(84.4), "84.4");
  EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

TEST(TextTable, EmptyTablePrintsNothingButHeader) {
  TextTable t;
  t.header({"a"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('a'), std::string::npos);
}

}  // namespace
}  // namespace repro
