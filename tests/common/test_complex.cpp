#include "common/complex.h"

#include <gtest/gtest.h>

#include <numbers>

namespace repro {
namespace {

TEST(Complex, ArithmeticBasics) {
  const cxd a{1.0, 2.0};
  const cxd b{3.0, -4.0};
  EXPECT_EQ(a + b, (cxd{4.0, -2.0}));
  EXPECT_EQ(a - b, (cxd{-2.0, 6.0}));
  // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
  EXPECT_EQ(a * b, (cxd{11.0, 2.0}));
  EXPECT_EQ(2.0 * a, (cxd{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (cxd{0.5, 1.0}));
}

TEST(Complex, CompoundAssignment) {
  cxd z{1.0, 1.0};
  z += cxd{1.0, -1.0};
  EXPECT_EQ(z, (cxd{2.0, 0.0}));
  z -= cxd{1.0, 0.0};
  EXPECT_EQ(z, (cxd{1.0, 0.0}));
  z *= cxd{0.0, 1.0};
  EXPECT_EQ(z, (cxd{0.0, 1.0}));
}

TEST(Complex, RotationsAreExact) {
  const cxd z{3.0, 5.0};
  EXPECT_EQ(z.mul_i(), (cxd{-5.0, 3.0}));
  EXPECT_EQ(z.mul_neg_i(), (cxd{5.0, -3.0}));
  EXPECT_EQ(z.mul_i().mul_neg_i(), z);
  EXPECT_EQ(z.conj(), (cxd{3.0, -5.0}));
}

TEST(Complex, NormAndAbs) {
  const cxd z{3.0, 4.0};
  EXPECT_DOUBLE_EQ(z.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(z.abs(), 5.0);
}

TEST(Complex, PolarUnit) {
  const auto z = polar_unit<double>(std::numbers::pi / 2.0);
  EXPECT_NEAR(z.re, 0.0, 1e-15);
  EXPECT_NEAR(z.im, 1.0, 1e-15);
  const auto w = polar_unit<float>(std::numbers::pi);
  EXPECT_NEAR(w.re, -1.0f, 1e-6);
  EXPECT_NEAR(w.im, 0.0f, 1e-6);
}

TEST(Complex, MulIMatchesMultiplicationByI) {
  const cxd i{0.0, 1.0};
  const cxd z{-2.5, 7.25};
  EXPECT_EQ(z.mul_i(), z * i);
  EXPECT_EQ(z.mul_neg_i(), z * i.conj());
}

}  // namespace
}  // namespace repro
