#include "common/rng.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, SeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  SplitMix64 rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, FillRandomReproducible) {
  auto a = random_complex<float>(64, 123);
  auto b = random_complex<float>(64, 123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // Values are in [-1, 1).
  for (const auto& z : a) {
    EXPECT_GE(z.re, -1.0f);
    EXPECT_LT(z.re, 1.0f);
  }
}

}  // namespace
}  // namespace repro
