#include "common/tensor.h"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Shape3, VolumeAndIndexing) {
  const Shape3 s{4, 8, 16};
  EXPECT_EQ(s.volume(), 4u * 8u * 16u);
  EXPECT_EQ(s.at(0, 0, 0), 0u);
  EXPECT_EQ(s.at(1, 0, 0), 1u);          // x fastest
  EXPECT_EQ(s.at(0, 1, 0), 4u);          // then y
  EXPECT_EQ(s.at(0, 0, 1), 32u);         // then z
  EXPECT_EQ(s.at(3, 7, 15), s.volume() - 1);
}

TEST(Shape3, IndexIsBijective) {
  const Shape3 s{2, 3, 4};
  std::vector<int> seen(s.volume(), 0);
  for (std::size_t z = 0; z < s.nz; ++z) {
    for (std::size_t y = 0; y < s.ny; ++y) {
      for (std::size_t x = 0; x < s.nx; ++x) {
        seen[s.at(x, y, z)]++;
      }
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Shape5, MatchesPaperLayout) {
  // V(256,16,16,16,16): first index fastest, as in the paper's pseudo code.
  const Shape5 v{{256, 16, 16, 16, 16}};
  EXPECT_EQ(v.volume(), 256u * 16 * 16 * 16 * 16);
  EXPECT_EQ(v.at(1, 0, 0, 0, 0), 1u);
  EXPECT_EQ(v.at(0, 1, 0, 0, 0), 256u);
  EXPECT_EQ(v.at(0, 0, 1, 0, 0), 256u * 16);
  EXPECT_EQ(v.at(0, 0, 0, 1, 0), 256u * 16 * 16);
  EXPECT_EQ(v.at(0, 0, 0, 0, 1), 256u * 16 * 16 * 16);
  EXPECT_EQ(v.stride(0), 1u);
  EXPECT_EQ(v.stride(4), 256u * 16 * 16 * 16);
}

TEST(Shape5, Equals3DIndexWhenSplit) {
  // Splitting y = y1 + 16*y2, z = z1 + 16*z2 must address the same element.
  const Shape3 s3{256, 256, 256};
  const Shape5 s5{{256, 16, 16, 16, 16}};
  for (std::size_t z = 0; z < 256; z += 37) {
    for (std::size_t y = 0; y < 256; y += 41) {
      for (std::size_t x = 0; x < 256; x += 59) {
        EXPECT_EQ(s3.at(x, y, z),
                  s5.at(x, y % 16, y / 16, z % 16, z / 16));
      }
    }
  }
}

TEST(Pow2Helpers, Basics) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(256), 8u);
  EXPECT_EQ(log2_exact(1u << 20), 20u);
}

}  // namespace
}  // namespace repro
