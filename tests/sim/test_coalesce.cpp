// Truth table of the G80 half-warp coalescing rules (CUDA 1.x).
#include "sim/coalesce.h"

#include <gtest/gtest.h>

namespace repro::sim {
namespace {

std::vector<LaneAccess> sequential(std::uint64_t base, std::uint32_t width,
                                   int lanes = 16) {
  std::vector<LaneAccess> v;
  for (int l = 0; l < lanes; ++l) {
    v.push_back({l, base + static_cast<std::uint64_t>(l) * width, width});
  }
  return v;
}

std::uint64_t total_bytes(const CoalesceResult& r) {
  std::uint64_t b = 0;
  for (const auto& t : r.transactions) b += t.bytes;
  return b;
}

TEST(Coalesce, Sequential4ByteCoalescesTo64B) {
  const auto r = coalesce_half_warp(sequential(0, 4));
  EXPECT_TRUE(r.coalesced);
  ASSERT_EQ(r.transactions.size(), 1u);
  EXPECT_EQ(r.transactions[0].bytes, 64u);
  EXPECT_EQ(r.transactions[0].addr, 0u);
}

TEST(Coalesce, Sequential8ByteCoalescesTo128B) {
  const auto r = coalesce_half_warp(sequential(1024, 8));
  EXPECT_TRUE(r.coalesced);
  ASSERT_EQ(r.transactions.size(), 1u);
  EXPECT_EQ(r.transactions[0].bytes, 128u);
  EXPECT_EQ(r.transactions[0].addr, 1024u);
}

TEST(Coalesce, Sequential16ByteCoalescesToTwo128B) {
  const auto r = coalesce_half_warp(sequential(4096, 16));
  EXPECT_TRUE(r.coalesced);
  ASSERT_EQ(r.transactions.size(), 2u);
  EXPECT_EQ(r.transactions[0].bytes, 128u);
  EXPECT_EQ(r.transactions[1].addr, 4096u + 128u);
}

TEST(Coalesce, MisalignedBaseDoesNotCoalesce) {
  // Rule (c): base must align to 16*size. 8-byte accesses from offset 8.
  const auto r = coalesce_half_warp(sequential(8, 8));
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions.size(), 16u);
  // Each padded to the 32-byte minimum burst.
  EXPECT_EQ(total_bytes(r), 16u * 32u);
}

TEST(Coalesce, PermutedLanesDoNotCoalesce) {
  // Rule (a): thread k must access base + k*size in thread order. Swap two
  // lanes' addresses: same footprint, but the G80 still serializes.
  auto v = sequential(0, 4);
  std::swap(v[3].addr, v[4].addr);
  const auto r = coalesce_half_warp(v);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions.size(), 16u);
}

TEST(Coalesce, StridedAccessDoesNotCoalesce) {
  std::vector<LaneAccess> v;
  for (int l = 0; l < 16; ++l) {
    v.push_back({l, static_cast<std::uint64_t>(l) * 2048, 8});
  }
  const auto r = coalesce_half_warp(v);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(total_bytes(r), 16u * 32u);  // 16x amplification vs 128 useful B
}

TEST(Coalesce, NonPow2WidthDoesNotCoalesce) {
  // Rule (b): only 32/64/128-bit accesses coalesce.
  const auto r = coalesce_half_warp(sequential(0, 12));
  EXPECT_FALSE(r.coalesced);
}

TEST(Coalesce, MixedWidthsDoNotCoalesce) {
  auto v = sequential(0, 4);
  v[7].bytes = 8;
  const auto r = coalesce_half_warp(v);
  EXPECT_FALSE(r.coalesced);
}

TEST(Coalesce, InactiveLanesMayLeaveGaps) {
  // Divergent half-warp: only even lanes access; addresses still satisfy
  // addr == base + lane*size, so the slot coalesces.
  std::vector<LaneAccess> v;
  for (int l = 0; l < 16; l += 2) {
    v.push_back({l, static_cast<std::uint64_t>(l) * 8, 8});
  }
  const auto r = coalesce_half_warp(v);
  EXPECT_TRUE(r.coalesced);
  ASSERT_EQ(r.transactions.size(), 1u);
  EXPECT_EQ(r.transactions[0].bytes, 128u);  // full segment still moves
}

TEST(Coalesce, EmptySlotIsTrivial) {
  const auto r = coalesce_half_warp({});
  EXPECT_TRUE(r.coalesced);
  EXPECT_TRUE(r.transactions.empty());
}

TEST(Coalesce, UncoalescedTransactionsAlignedToBurst) {
  auto v = sequential(4, 8);  // misaligned
  const auto r = coalesce_half_warp(v);
  ASSERT_FALSE(r.coalesced);
  for (const auto& t : r.transactions) {
    EXPECT_EQ(t.addr % t.bytes, 0u);
    EXPECT_GE(t.bytes, kMinTransactionBytes);
  }
}

}  // namespace
}  // namespace repro::sim
