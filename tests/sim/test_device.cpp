// End-to-end checks of the Device + kernel framework with small synthetic
// kernels: functional correctness, stats collection, coalescing detection,
// capacity enforcement and clock accounting.
#include "sim/device.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/complex.h"

namespace repro::sim {
namespace {

/// Copies n floats with perfectly coalesced accesses.
class CoalescedCopy final : public Kernel {
 public:
  CoalescedCopy(DeviceBuffer<float>& in, DeviceBuffer<float>& out,
                unsigned grid = 8, unsigned block = 64)
      : in_(in), out_(out), grid_(grid), block_(block) {}

  [[nodiscard]] LaunchConfig config() const override {
    LaunchConfig c;
    c.name = "coalesced_copy";
    c.grid_blocks = grid_;
    c.threads_per_block = block_;
    c.regs_per_thread = 8;
    return c;
  }

  void run_block(BlockCtx& ctx) override {
    auto in = ctx.global(in_);
    auto out = ctx.global(out_);
    const std::size_t n = in_.size();
    ctx.threads([&](ThreadCtx& t) {
      for (std::size_t i = t.global_id(); i < n; i += t.total_threads()) {
        out.store(t, i, in.load(t, i));
      }
    });
  }

 private:
  DeviceBuffer<float>& in_;
  DeviceBuffer<float>& out_;
  unsigned grid_;
  unsigned block_;
};

/// Copies with a per-thread stride so half-warp slots never coalesce.
class StridedCopy final : public Kernel {
 public:
  StridedCopy(DeviceBuffer<float>& in, DeviceBuffer<float>& out,
              std::size_t stride)
      : in_(in), out_(out), stride_(stride) {}

  [[nodiscard]] LaunchConfig config() const override {
    LaunchConfig c;
    c.name = "strided_copy";
    c.grid_blocks = 8;
    c.threads_per_block = 64;
    c.regs_per_thread = 8;
    return c;
  }

  void run_block(BlockCtx& ctx) override {
    auto in = ctx.global(in_);
    auto out = ctx.global(out_);
    const std::size_t n = in_.size();
    ctx.threads([&](ThreadCtx& t) {
      // Thread k handles indices {k*stride ...}: lanes are stride apart.
      for (std::size_t i = t.global_id() * stride_; i < n;
           i = i + 1 == (t.global_id() + 1) * stride_
                   ? i + 1 + (t.total_threads() - 1) * stride_
                   : i + 1) {
        out.store(t, i, in.load(t, i));
      }
    });
  }

 private:
  DeviceBuffer<float>& in_;
  DeviceBuffer<float>& out_;
  std::size_t stride_;
};

TEST(Device, TransfersAreFunctionallyCorrect) {
  Device dev(geforce_8800_gt());
  auto buf = dev.alloc<float>(1000);
  std::vector<float> src(1000);
  std::iota(src.begin(), src.end(), 0.0f);
  dev.h2d(buf, std::span<const float>(src));
  std::vector<float> dst(1000);
  dev.d2h(std::span<float>(dst), buf);
  EXPECT_EQ(src, dst);
  EXPECT_GT(dev.elapsed_ms(), 0.0);
  EXPECT_EQ(dev.h2d_bytes(), 4000u);
  EXPECT_EQ(dev.d2h_bytes(), 4000u);
}

TEST(Device, PartialTransfers) {
  Device dev(geforce_8800_gt());
  auto buf = dev.alloc<int>(100);
  const std::vector<int> src{1, 2, 3};
  dev.h2d(buf, std::span<const int>(src), 10);
  std::vector<int> dst(3);
  dev.d2h(std::span<int>(dst), buf, 10);
  EXPECT_EQ(dst, src);
}

TEST(Device, CapacityEnforced) {
  Device dev(geforce_8800_gts());  // 512 MB
  auto big = dev.alloc<float>(100u << 20);  // 400 MB
  EXPECT_THROW(dev.alloc<float>(50u << 20), OutOfDeviceMemory);  // +200 MB
  // RAII: freeing the first buffer makes room.
  big = DeviceBuffer<float>();
  EXPECT_NO_THROW(dev.alloc<float>(50u << 20));
}

TEST(Device, AllocationTracking) {
  Device dev(geforce_8800_gt());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    auto a = dev.alloc<double>(1024);
    EXPECT_EQ(dev.allocated_bytes(), 8192u);
    auto b = dev.alloc<float>(10);
    EXPECT_EQ(dev.allocated_bytes(), 8192u + 40u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, PeakStatsAreDeviceLifetimeUntilReset) {
  Device dev(geforce_8800_gt());
  auto a = dev.alloc<float>(1 << 20);  // 4 MB
  {
    auto b = dev.alloc<float>(1 << 20);
    EXPECT_EQ(dev.peak_allocated_bytes(), 8u << 20);
    EXPECT_EQ(dev.alloc_count(), 2u);
  }
  // reset_clock is a timing concern: allocator stats survive it.
  dev.reset_clock();
  EXPECT_EQ(dev.peak_allocated_bytes(), 8u << 20);
  EXPECT_EQ(dev.alloc_count(), 2u);
  // reset_peak_stats re-anchors the peak to what is still allocated.
  dev.reset_peak_stats();
  EXPECT_EQ(dev.peak_allocated_bytes(), 4u << 20);
  EXPECT_EQ(dev.alloc_count(), 0u);
  auto c = dev.alloc<float>(2 << 20);
  EXPECT_EQ(dev.peak_allocated_bytes(), 12u << 20);
  EXPECT_EQ(dev.alloc_count(), 1u);
}

TEST(Device, DistinctBuffersDistinctAddresses) {
  Device dev(geforce_8800_gt());
  auto a = dev.alloc<float>(100);
  auto b = dev.alloc<float>(100);
  EXPECT_NE(a.base_addr(), b.base_addr());
  EXPECT_EQ(a.base_addr() % 256, 0u);
  EXPECT_EQ(b.base_addr() % 256, 0u);
}

TEST(Device, KernelCopiesData) {
  Device dev(geforce_8800_gtx());
  const std::size_t n = 64 * 1024;
  auto in = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);
  std::vector<float> src(n);
  std::iota(src.begin(), src.end(), 1.0f);
  dev.h2d(in, std::span<const float>(src));

  CoalescedCopy k(in, out);
  const LaunchResult r = dev.launch(k);

  std::vector<float> dst(n);
  dev.d2h(std::span<float>(dst), out);
  EXPECT_EQ(dst, src);
  EXPECT_GT(r.total_ms, 0.0);
  EXPECT_EQ(r.name, "coalesced_copy");
}

TEST(Device, CoalescedCopyIsDetectedAndFast) {
  Device dev(geforce_8800_gtx());
  const std::size_t n = 1u << 20;
  auto in = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);
  CoalescedCopy k(in, out, 32, 64);
  const LaunchResult r = dev.launch(k);
  EXPECT_GT(r.coalesced_fraction, 0.99);
  // Achieved bandwidth should be a large fraction of peak.
  EXPECT_GT(r.effective_gbs, 0.6 * dev.spec().peak_bandwidth_gbs());
  EXPECT_EQ(r.dram_bytes, 2ull * n * sizeof(float));
}

TEST(Device, StridedCopyIsDetectedAndSlow) {
  Device dev(geforce_8800_gtx());
  const std::size_t n = 1u << 20;
  auto in = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);

  CoalescedCopy good(in, out, 32, 64);
  StridedCopy bad(in, out, n / (32 * 64));
  const LaunchResult rg = dev.launch(good);
  const LaunchResult rb = dev.launch(bad);

  EXPECT_LT(rb.coalesced_fraction, 0.01);
  // Uncoalesced 4-byte accesses are padded to 32-byte bursts: 8x traffic.
  EXPECT_GT(rb.dram_bytes, 6ull * rg.dram_bytes);
  EXPECT_GT(rb.total_ms, 3.0 * rg.total_ms);
}

TEST(Device, ClockAdvancesAndResets) {
  Device dev(geforce_8800_gt());
  auto in = dev.alloc<float>(4096);
  auto out = dev.alloc<float>(4096);
  CoalescedCopy k(in, out);
  dev.launch(k);
  const double t1 = dev.elapsed_ms();
  EXPECT_GT(t1, 0.0);
  dev.launch(k);
  EXPECT_GT(dev.elapsed_ms(), t1);
  EXPECT_EQ(dev.history().size(), 2u);
  dev.reset_clock();
  EXPECT_EQ(dev.elapsed_ms(), 0.0);
  EXPECT_TRUE(dev.history().empty());
}

TEST(Device, SamplingInvariance) {
  // Halving the sampling budget must not materially change the estimate.
  const std::size_t n = 1u << 20;
  auto run = [&](std::uint32_t budget) {
    Device dev(geforce_8800_gtx());
    dev.options().sample_accesses_per_thread = budget;
    auto in = dev.alloc<float>(n);
    auto out = dev.alloc<float>(n);
    CoalescedCopy k(in, out, 32, 64);
    return dev.launch(k).total_ms;
  };
  const double full = run(2048);
  const double half = run(1024);
  EXPECT_NEAR(half, full, 0.15 * full);
}

}  // namespace
}  // namespace repro::sim
