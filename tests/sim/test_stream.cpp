// Stream/event scheduler: engine contention, overlap, default-stream
// legacy semantics, event ordering, and timeline bookkeeping.
#include "sim/stream.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/device.h"

namespace repro::sim {
namespace {

GpuSpec spec_with_engines(int dma_engines) {
  GpuSpec g = geforce_8800_gt();
  g.dma_engines = dma_engines;
  return g;
}

TEST(Stream, SpecsDeclareTheirCopyEngines) {
  EXPECT_EQ(geforce_8800_gt().dma_engines, 1);
  EXPECT_EQ(geforce_8800_gts().dma_engines, 1);
  EXPECT_EQ(geforce_8800_gtx().dma_engines, 1);
  EXPECT_EQ(geforce_gtx_280().dma_engines, 2);
}

TEST(Stream, DefaultQueueStaysSerial) {
  // With no streams in flight the device is the old serial machine: the
  // clock is exactly the sum of the operations' durations.
  Device dev(geforce_8800_gt());
  auto buf = dev.alloc<float>(1 << 16);
  std::vector<float> host(buf.size());
  std::iota(host.begin(), host.end(), 0.0f);
  dev.h2d(buf, std::span<const float>(host));
  std::vector<float> back(buf.size());
  dev.d2h(std::span<float>(back), buf);
  EXPECT_EQ(back, host);
  EXPECT_NEAR(dev.elapsed_ms(), dev.h2d_ms() + dev.d2h_ms(), 1e-12);
}

TEST(Stream, ComputeOverlapsCopyOnSeparateEngines) {
  Device dev(spec_with_engines(1));
  Stream s0(dev);
  Stream s1(dev);
  dev.submit_timed(s0, Engine::DmaH2D, 10.0, "upload");
  dev.submit_timed(s1, Engine::Compute, 10.0, "kernel");
  EXPECT_NEAR(dev.elapsed_ms(), 10.0, 1e-12);  // full overlap
}

TEST(Stream, SingleCopyEngineSerializesDirections) {
  Device dev(spec_with_engines(1));
  Stream s0(dev);
  Stream s1(dev);
  dev.submit_timed(s0, Engine::DmaH2D, 10.0, "upload");
  dev.submit_timed(s1, Engine::DmaD2H, 10.0, "download");
  // One engine serves both directions: the download queues behind.
  EXPECT_NEAR(dev.elapsed_ms(), 20.0, 1e-12);
  EXPECT_NEAR(s1.ops().front().start_ms(), 10.0, 1e-12);
}

TEST(Stream, DualCopyEnginesRunDirectionsConcurrently) {
  Device dev(spec_with_engines(2));
  Stream s0(dev);
  Stream s1(dev);
  dev.submit_timed(s0, Engine::DmaH2D, 10.0, "upload");
  dev.submit_timed(s1, Engine::DmaD2H, 10.0, "download");
  EXPECT_NEAR(dev.elapsed_ms(), 10.0, 1e-12);
  EXPECT_NEAR(s1.ops().front().start_ms(), 0.0, 1e-12);
}

TEST(Stream, ComputeEngineIsSingleAcrossStreams) {
  Device dev(spec_with_engines(2));
  Stream s0(dev);
  Stream s1(dev);
  dev.submit_timed(s0, Engine::Compute, 7.0, "k0");
  dev.submit_timed(s1, Engine::Compute, 5.0, "k1");
  // Kernels from different streams serialize in submission order.
  EXPECT_NEAR(s1.ops().front().start_ms(), 7.0, 1e-12);
  EXPECT_NEAR(dev.elapsed_ms(), 12.0, 1e-12);
}

TEST(Stream, OpsWithinAStreamKeepSubmissionOrder) {
  Device dev(spec_with_engines(2));
  Stream s(dev);
  dev.submit_timed(s, Engine::DmaH2D, 4.0, "upload");
  dev.submit_timed(s, Engine::Compute, 6.0, "kernel");
  dev.submit_timed(s, Engine::DmaD2H, 3.0, "download");
  ASSERT_EQ(s.ops().size(), 3u);
  EXPECT_NEAR(s.ops()[1].start_ms(), 4.0, 1e-12);
  EXPECT_NEAR(s.ops()[2].start_ms(), 10.0, 1e-12);
  EXPECT_NEAR(s.ready_ms(), 13.0, 1e-12);
}

TEST(Stream, EventOrdersAcrossStreams) {
  Device dev(spec_with_engines(2));
  Stream s0(dev);
  Stream s1(dev);
  dev.submit_timed(s0, Engine::Compute, 10.0, "producer");
  Event done;
  s0.record(done);
  EXPECT_TRUE(done.recorded());
  EXPECT_NEAR(done.time_ms(), 10.0, 1e-12);
  s1.wait(done);
  dev.submit_timed(s1, Engine::DmaH2D, 5.0, "consumer");
  EXPECT_NEAR(s1.ops().front().start_ms(), 10.0, 1e-12);
  EXPECT_NEAR(dev.elapsed_ms(), 15.0, 1e-12);
}

TEST(Stream, WaitUntilFencesAnAbsoluteTimelinePoint) {
  Device dev(spec_with_engines(2));
  Stream s(dev);
  s.wait_until_ms(14.0);  // e.g. another device's download completing
  dev.submit_timed(s, Engine::Compute, 3.0, "k");
  EXPECT_NEAR(s.ops().front().start_ms(), 14.0, 1e-12);
  // A point already in the past is a no-op, like waiting a passed event.
  s.wait_until_ms(5.0);
  EXPECT_NEAR(s.ready_ms(), 17.0, 1e-12);
}

TEST(Stream, WaitOnUnrecordedEventIsNoOp) {
  Device dev(spec_with_engines(2));
  Stream s(dev);
  Event never;
  s.wait(never);  // CUDA semantics: no-op
  dev.submit_timed(s, Engine::Compute, 3.0, "k");
  EXPECT_NEAR(s.ops().front().start_ms(), 0.0, 1e-12);
}

TEST(Stream, DefaultQueueJoinsLiveStreams) {
  // Legacy default-stream semantics: serial-queue work starts only after
  // every live stream's tail.
  Device dev(spec_with_engines(1));
  auto buf = dev.alloc<float>(1 << 14);
  std::vector<float> host(buf.size());
  {
    Stream s(dev);
    dev.submit_timed(s, Engine::Compute, 25.0, "async-kernel");
    dev.h2d(buf, std::span<const float>(host));  // default queue
    EXPECT_NEAR(dev.elapsed_ms(), 25.0 + dev.h2d_ms(), 1e-9);
  }
}

TEST(Stream, DestructorSynchronizes) {
  Device dev(spec_with_engines(1));
  {
    Stream s(dev);
    dev.submit_timed(s, Engine::Compute, 12.0, "k");
  }
  // The stream's timeline folded into the clock at destruction.
  EXPECT_NEAR(dev.elapsed_ms(), 12.0, 1e-12);
}

TEST(Stream, SyncAdvancesTheClockToTheTail) {
  Device dev(spec_with_engines(1));
  Stream s(dev);
  dev.submit_timed(s, Engine::Compute, 8.0, "k");
  dev.sync(s);
  EXPECT_NEAR(dev.elapsed_ms(), 8.0, 1e-12);
  dev.sync_all();
  EXPECT_NEAR(dev.elapsed_ms(), 8.0, 1e-12);
}

TEST(Stream, ResetClockClearsStreamTimelines) {
  Device dev(spec_with_engines(2));
  Stream s(dev);
  dev.submit_timed(s, Engine::Compute, 9.0, "k");
  dev.reset_clock();
  EXPECT_EQ(dev.elapsed_ms(), 0.0);
  EXPECT_EQ(s.ready_ms(), 0.0);
  EXPECT_TRUE(s.ops().empty());
}

TEST(Stream, AsyncTransfersMoveDataImmediately) {
  // Functional effects are eager: the bytes land regardless of where the
  // op sits on the timeline.
  Device dev(spec_with_engines(2));
  auto buf = dev.alloc<float>(4096);
  std::vector<float> host(buf.size());
  std::iota(host.begin(), host.end(), 1.0f);
  Stream s(dev);
  const double up = dev.h2d_async(buf, std::span<const float>(host), s);
  std::vector<float> back(buf.size());
  const double down = dev.d2h_async(std::span<float>(back), buf, s);
  EXPECT_EQ(back, host);
  EXPECT_GT(up, 0.0);
  EXPECT_GT(down, 0.0);
  ASSERT_EQ(s.ops().size(), 2u);
  EXPECT_EQ(s.ops()[0].engine, Engine::DmaH2D);
  EXPECT_EQ(s.ops()[1].engine, Engine::DmaD2H);
  dev.sync(s);
  EXPECT_NEAR(dev.elapsed_ms(), up + down, 1e-9);  // same-stream: serial
}

TEST(Stream, SubmitTimedReturnsStartTime) {
  Device dev(spec_with_engines(1));
  Stream s0(dev);
  Stream s1(dev);
  EXPECT_NEAR(dev.submit_timed(s0, Engine::DmaH2D, 6.0, "a"), 0.0, 1e-12);
  EXPECT_NEAR(dev.submit_timed(s1, Engine::DmaH2D, 6.0, "b"), 6.0, 1e-12);
}

TEST(Stream, EngineNamesAreStable) {
  EXPECT_STREQ(engine_name(Engine::Compute), "compute");
  EXPECT_STREQ(engine_name(Engine::DmaH2D), "dma_h2d");
  EXPECT_STREQ(engine_name(Engine::DmaD2H), "dma_d2h");
}

}  // namespace
}  // namespace repro::sim
