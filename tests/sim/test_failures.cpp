// Failure injection: every guarded error path of the simulator must throw
// the documented exception rather than corrupt state or crash.
#include <gtest/gtest.h>

#include "sim/device.h"

namespace repro::sim {
namespace {

class NullKernel final : public Kernel {
 public:
  explicit NullKernel(LaunchConfig cfg) : cfg_(std::move(cfg)) {}
  [[nodiscard]] LaunchConfig config() const override { return cfg_; }
  void run_block(BlockCtx&) override {}

 private:
  LaunchConfig cfg_;
};

TEST(Failures, TransferBoundsChecked) {
  Device dev(geforce_8800_gt());
  auto buf = dev.alloc<float>(16);
  std::vector<float> big(17);
  EXPECT_THROW(dev.h2d(buf, std::span<const float>(big)), Error);
  std::vector<float> host(8);
  EXPECT_THROW(dev.d2h(std::span<float>(host), buf, 9), Error);
  EXPECT_NO_THROW(dev.d2h(std::span<float>(host), buf, 8));
}

TEST(Failures, LaunchRejectsEmptyGrid) {
  Device dev(geforce_8800_gt());
  LaunchConfig cfg;
  cfg.grid_blocks = 0;
  NullKernel k(cfg);
  EXPECT_THROW(dev.launch(k), Error);
}

TEST(Failures, LaunchRejectsOversizedBlock) {
  Device dev(geforce_8800_gt());
  LaunchConfig cfg;
  cfg.threads_per_block = 1024;  // > 768 on CC 1.x
  NullKernel k(cfg);
  EXPECT_THROW(dev.launch(k), Error);
}

TEST(Failures, LaunchRejectsImpossibleShmem) {
  Device dev(geforce_8800_gt());
  LaunchConfig cfg;
  cfg.shmem_per_block = 32 * 1024;  // > 16 KB
  NullKernel k(cfg);
  EXPECT_THROW(dev.launch(k), Error);
}

TEST(Failures, OomMessageNamesTheCard) {
  Device dev(geforce_8800_gts());
  try {
    auto b = dev.alloc<float>(1ull << 30);  // 4 GB
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_NE(std::string(e.what()).find("8800 GTS"), std::string::npos);
  }
}

TEST(Failures, DeviceUsableAfterOom) {
  Device dev(geforce_8800_gt());
  EXPECT_THROW(dev.alloc<float>(1ull << 30), OutOfDeviceMemory);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  auto ok = dev.alloc<float>(1024);
  EXPECT_EQ(dev.allocated_bytes(), 4096u);
}

TEST(Failures, MovedFromBufferIsInert) {
  Device dev(geforce_8800_gt());
  auto a = dev.alloc<float>(256);
  const auto addr = a.base_addr();
  DeviceBuffer<float> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base_addr(), addr);
  EXPECT_EQ(dev.allocated_bytes(), 1024u);
  b = DeviceBuffer<float>();
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Failures, SelfMoveAssignIsSafe) {
  Device dev(geforce_8800_gt());
  auto a = dev.alloc<float>(64);
  auto* pa = &a;
  a = std::move(*pa);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(dev.allocated_bytes(), 256u);
}

}  // namespace
}  // namespace repro::sim
