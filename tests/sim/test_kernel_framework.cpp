// Focused tests of the kernel-execution framework's instrumentation:
// texture-cache modelling, constant-memory serialization, barriers,
// sampling options, and the global/shared accessor plumbing.
#include <gtest/gtest.h>

#include "sim/device.h"

namespace repro::sim {
namespace {

/// Minimal configurable kernel for poking one framework feature at a time.
class ProbeKernel final : public Kernel {
 public:
  using Body = std::function<void(BlockCtx&)>;
  ProbeKernel(LaunchConfig cfg, Body body)
      : cfg_(std::move(cfg)), body_(std::move(body)) {}
  [[nodiscard]] LaunchConfig config() const override { return cfg_; }
  void run_block(BlockCtx& ctx) override { body_(ctx); }

 private:
  LaunchConfig cfg_;
  Body body_;
};

LaunchConfig small_cfg(unsigned grid = 2, unsigned block = 32,
                       std::size_t shmem = 0) {
  LaunchConfig c;
  c.name = "probe";
  c.grid_blocks = grid;
  c.threads_per_block = block;
  c.regs_per_thread = 8;
  c.shmem_per_block = shmem;
  return c;
}

TEST(Framework, TextureCacheHitsAreCheap) {
  // All threads loop over a tiny table through the texture path: after the
  // first pass the lines are resident, so a broadcast-heavy kernel is much
  // faster than streaming the same volume uncached.
  Device dev(geforce_8800_gt());
  auto table = dev.alloc<float>(64);  // 256 B: fits any cache
  auto sink = dev.alloc<float>(64 * 1024);

  ProbeKernel k(small_cfg(8, 64), [&](BlockCtx& ctx) {
    auto tex = ctx.texture(table);
    auto out = ctx.global(sink);
    ctx.threads([&](ThreadCtx& t) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < 1024; ++i) {
        acc += tex.fetch(t, i % 64);
      }
      out.store(t, t.global_id(), acc);
    });
  });
  const auto r = dev.launch(k);
  // DRAM traffic: the sink stores plus at most a few cache-miss lines —
  // nowhere near the 512 threads * 1024 fetches * 4 B of texture reads.
  EXPECT_LT(r.dram_bytes, 8u * 64 * 1024);
}

TEST(Framework, TextureThrashingCostsBandwidth) {
  // A texture working set far beyond the 8 KB cache must spill to DRAM.
  Device dev(geforce_8800_gt());
  auto table = dev.alloc<float>(1u << 20);  // 4 MB
  auto sink = dev.alloc<float>(64 * 1024);

  ProbeKernel k(small_cfg(8, 64), [&](BlockCtx& ctx) {
    auto tex = ctx.texture(table);
    auto out = ctx.global(sink);
    ctx.threads([&](ThreadCtx& t) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < 512; ++i) {
        acc += tex.fetch(t, (t.global_id() + i * 4099) % (1u << 20));
      }
      out.store(t, t.global_id(), acc);
    });
  });
  const auto r = dev.launch(k);
  // Misses dominate: DRAM traffic is much larger than the sink stores.
  EXPECT_GT(r.dram_bytes, 20u * 64 * 1024);
}

TEST(Framework, ConstantBroadcastBeatsDivergentReads) {
  Device dev(geforce_8800_gts());
  const std::vector<float> table(4096, 1.0f);
  auto sink = dev.alloc<float>(4096);

  auto make = [&](bool divergent) {
    return ProbeKernel(small_cfg(16, 64), [&, divergent](BlockCtx& ctx) {
      auto c = ctx.constant(table);
      auto out = ctx.global(sink);
      ctx.threads([&](ThreadCtx& t) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < 256; ++i) {
          const std::size_t idx = divergent ? (t.tid * 7 + i) % 4096 : i;
          acc += c.load(t, idx);
        }
        out.store(t, t.global_id() % 4096, acc);
      });
    });
  };
  auto broadcast = make(false);
  auto divergent = make(true);
  const auto rb = dev.launch(broadcast);
  const auto rd = dev.launch(divergent);
  EXPECT_GT(rd.compute_ms, 3.0 * rb.compute_ms);
}

TEST(Framework, SharedMemoryConflictsRaiseComputeTime) {
  Device dev(geforce_8800_gt());
  auto sink = dev.alloc<float>(4096);
  auto make = [&](std::size_t stride) {
    return ProbeKernel(
        small_cfg(16, 64, 64 * 32 * sizeof(float)), [&, stride](BlockCtx& ctx) {
          auto sh = ctx.shared<float>(0, 64 * 32);
          auto out = ctx.global(sink);
          ctx.threads([&](ThreadCtx& t) {
            for (std::size_t i = 0; i < 128; ++i) {
              sh.store(t, (t.tid * stride + i * 64) % (64 * 32),
                       static_cast<float>(i));
            }
          });
          ctx.threads([&](ThreadCtx& t) {
            out.store(t, t.global_id() % 4096, sh.load(t, t.tid));
          });
        });
  };
  auto clean = make(1);    // conflict-free
  auto conflict = make(16);  // 16-way bank conflicts
  const auto rc = dev.launch(clean);
  const auto rx = dev.launch(conflict);
  EXPECT_GT(rx.compute_ms, 4.0 * rc.compute_ms);
}

TEST(Framework, BarrierCountingWorks) {
  Device dev(geforce_8800_gt());
  ProbeKernel k(small_cfg(4, 32), [&](BlockCtx& ctx) {
    ctx.threads([](ThreadCtx&) {});
    ctx.barrier();
    ctx.barrier();
  });
  EXPECT_NO_THROW(dev.launch(k));
}

TEST(Framework, GlobalOffsetViewAddressesCorrectly) {
  Device dev(geforce_8800_gt());
  auto buf = dev.alloc<int>(128);
  std::vector<int> init(128, 0);
  dev.h2d(buf, std::span<const int>(init));
  ProbeKernel k(small_cfg(1, 16), [&](BlockCtx& ctx) {
    auto view = ctx.global(buf, 64);  // element offset 64
    ctx.threads([&](ThreadCtx& t) {
      view.store(t, t.tid, static_cast<int>(t.tid) + 1);
    });
  });
  dev.launch(k);
  std::vector<int> out(128);
  dev.d2h(std::span<int>(out), buf);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(64 + i)], i + 1);
  }
}

TEST(Framework, SharedWindowBoundsChecked) {
  Device dev(geforce_8800_gt());
  ProbeKernel k(small_cfg(1, 16, 256), [&](BlockCtx& ctx) {
    ctx.shared<float>(0, 128);  // 512 B > 256 B allocation
  });
  EXPECT_THROW(dev.launch(k), Error);
}

TEST(Framework, SamplingBudgetCapsRecordedStreams) {
  Device dev(geforce_8800_gtx());
  dev.options().sample_accesses_per_thread = 8;
  auto in = dev.alloc<float>(1u << 18);
  auto out = dev.alloc<float>(1u << 18);
  ProbeKernel k(small_cfg(4, 64), [&](BlockCtx& ctx) {
    auto i = ctx.global(in);
    auto o = ctx.global(out);
    ctx.threads([&](ThreadCtx& t) {
      for (std::size_t j = t.global_id(); j < (1u << 18);
           j += t.total_threads()) {
        o.store(t, j, i.load(t, j));
      }
    });
  });
  const auto r = dev.launch(k);
  // Exact byte totals are NOT affected by the sampling budget.
  EXPECT_EQ(r.dram_bytes, 2ull * (1u << 18) * sizeof(float));
}

TEST(Framework, ZeroSampledBlocksFallsBackGracefully) {
  Device dev(geforce_8800_gt());
  dev.options().max_sampled_blocks = 0;
  auto in = dev.alloc<float>(4096);
  auto out = dev.alloc<float>(4096);
  ProbeKernel k(small_cfg(4, 64), [&](BlockCtx& ctx) {
    auto i = ctx.global(in);
    auto o = ctx.global(out);
    ctx.threads([&](ThreadCtx& t) {
      for (std::size_t j = t.global_id(); j < 4096;
           j += t.total_threads()) {
        o.store(t, j, i.load(t, j));
      }
    });
  });
  const auto r = dev.launch(k);
  EXPECT_GT(r.total_ms, 0.0);  // ideal-bandwidth fallback path
}

}  // namespace
}  // namespace repro::sim
