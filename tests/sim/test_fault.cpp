// The fault injector and the typed error / sticky-stream semantics it
// drives (sim/fault.h, sim/errors.h, stream.h poison machinery).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/event.h"

namespace repro::sim {
namespace {

/// Doubles every element of a float buffer — a minimal functional kernel
/// so launch faults can be checked against real data effects.
class DoubleKernel final : public Kernel {
 public:
  explicit DoubleKernel(DeviceBuffer<float>& data) : data_(data) {}

  [[nodiscard]] LaunchConfig config() const override {
    LaunchConfig c;
    c.name = "double";
    return c;
  }

  void run_block(BlockCtx& ctx) override {
    auto d = ctx.global(data_);
    ctx.threads([&](ThreadCtx& t) {
      for (std::size_t i = t.global_id(); i < data_.size();
           i += t.total_threads()) {
        d.store(t, i, 2.0f * d.load(t, i));
      }
    });
  }

 private:
  DeviceBuffer<float>& data_;
};

std::vector<float> iota_host(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 1.0f);
  return v;
}

TEST(FaultInjector, NthWindowFiresExactly) {
  FaultInjector inj;
  inj.arm(FaultKind::TransferTransient, 2, 2);  // occurrences 2 and 3
  EXPECT_FALSE(inj.fire(FaultKind::TransferTransient));
  EXPECT_TRUE(inj.fire(FaultKind::TransferTransient));
  EXPECT_TRUE(inj.fire(FaultKind::TransferTransient));
  EXPECT_FALSE(inj.fire(FaultKind::TransferTransient));
  EXPECT_EQ(inj.occurrences(FaultKind::TransferTransient), 4u);
  EXPECT_EQ(inj.fired(FaultKind::TransferTransient), 2u);
  EXPECT_EQ(inj.total_fired(), 2u);
}

TEST(FaultInjector, KindsCountIndependently) {
  FaultInjector inj;
  inj.arm(FaultKind::AllocFail, 1);
  EXPECT_FALSE(inj.fire(FaultKind::LaunchFail));  // different kind
  EXPECT_TRUE(inj.fire(FaultKind::AllocFail));
  EXPECT_FALSE(inj.fire(FaultKind::AllocFail));  // window exhausted
  EXPECT_TRUE(inj.armed());  // armed() reports the plan, not remaining fires
  inj.disarm_all();
  EXPECT_FALSE(inj.armed());
}

TEST(FaultInjector, SeededDrawsAreReproducible) {
  auto pattern = [](std::uint64_t seed) {
    FaultInjector inj;
    inj.arm_seeded(FaultKind::TransferTransient, 0.3, seed);
    std::vector<bool> fires;
    fires.reserve(64);
    for (int i = 0; i < 64; ++i) {
      fires.push_back(inj.fire(FaultKind::TransferTransient));
    }
    return fires;
  };
  EXPECT_EQ(pattern(42), pattern(42));
  EXPECT_NE(pattern(42), pattern(43));
}

TEST(FaultInjector, SeededMaxFiresBounds) {
  FaultInjector inj;
  inj.arm_seeded(FaultKind::TransferTransient, 1.0, 7, /*max_fires=*/3);
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    if (inj.fire(FaultKind::TransferTransient)) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST(FaultAlloc, InjectedOomCarriesAllocatorPicture) {
  Device dev(geforce_8800_gts());
  auto held = dev.alloc<float>(1024);  // so free < capacity
  dev.faults().arm(FaultKind::AllocFail, 1);
  try {
    auto b = dev.alloc<float>(256);
    FAIL() << "expected injected OutOfDeviceMemory";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_TRUE(e.injected());
    EXPECT_EQ(e.requested_bytes(), 1024u);
    EXPECT_EQ(e.capacity_bytes(), dev.memory_capacity());
    EXPECT_EQ(e.free_bytes(), dev.memory_capacity() - 4096u);
    EXPECT_EQ(e.device().name, dev.spec().name);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("8800 GTS"), std::string::npos);
    EXPECT_NE(msg.find("requested 1024 bytes"), std::string::npos);
    EXPECT_NE(msg.find("injected"), std::string::npos);
  }
  // The window is spent: the device works again and leaked nothing.
  auto ok = dev.alloc<float>(256);
  EXPECT_EQ(dev.allocated_bytes(), 5120u);
}

TEST(FaultErrors, AddContextPrepends) {
  TransientTransferError e(DeviceRef{"8800 GTS", 2}, "h2d", 4096);
  const std::string base = e.what();
  EXPECT_NE(base.find("8800 GTS (device 2)"), std::string::npos);
  EXPECT_NE(base.find("h2d"), std::string::npos);
  EXPECT_NE(base.find("4096"), std::string::npos);
  e.add_context("plan[test]");
  EXPECT_EQ(std::string(e.what()), "plan[test]: " + base);
  EXPECT_EQ(e.bytes(), 4096u);  // typed fields survive the rewrite
}

TEST(FaultTransfer, SerialTransientThrowsChargesTimeDeliversNothing) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  dev.h2d(buf, std::span<const float>(host));  // occurrence 1, clean
  std::vector<float> baseline(64);
  dev.d2h(std::span<float>(baseline), buf);  // occurrence 2, clean

  dev.faults().arm(FaultKind::TransferTransient, 1);
  const double before_ms = dev.elapsed_ms();
  const auto poison = std::vector<float>(64, -1.0f);
  EXPECT_THROW(dev.h2d(buf, std::span<const float>(poison)),
               TransientTransferError);
  // The attempt occupied the link...
  EXPECT_GT(dev.elapsed_ms(), before_ms);
  // ...but delivered nothing: the buffer still holds the old payload.
  std::vector<float> now(64);
  dev.d2h(std::span<float>(now), buf);
  EXPECT_EQ(now, baseline);
}

TEST(FaultTransfer, CorruptionFlipsOneByteSilently) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  dev.faults().arm(FaultKind::TransferCorrupt, 1);
  EXPECT_NO_THROW(dev.h2d(buf, std::span<const float>(host)));
  std::vector<float> now(64);
  dev.d2h(std::span<float>(now), buf);
  int mismatches = 0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    if (now[i] != host[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 1);  // exactly one element damaged
}

TEST(FaultStream, AsyncTransientPoisonsAndSticks) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  Stream s(dev);
  dev.faults().arm(FaultKind::TransferTransient, 1);

  // The enqueue itself does not throw — the error is sticky on the stream.
  EXPECT_NO_THROW(dev.h2d_async(buf, std::span<const float>(host), s));
  EXPECT_TRUE(s.poisoned());

  // Later work on the poisoned stream fails fast, without running and
  // without consuming an injector occurrence.
  const auto occ_before = dev.faults().occurrences(FaultKind::TransferTransient);
  EXPECT_THROW(dev.h2d_async(buf, std::span<const float>(host), s),
               TransientTransferError);
  EXPECT_EQ(dev.faults().occurrences(FaultKind::TransferTransient),
            occ_before);

  // Synchronize surfaces the first error; clear_error() is the explicit
  // recovery point after which the stream works again.
  EXPECT_THROW(dev.sync(s), TransientTransferError);
  s.clear_error();
  dev.faults().disarm_all();
  EXPECT_NO_THROW(dev.h2d_async(buf, std::span<const float>(host), s));
  EXPECT_NO_THROW(dev.sync(s));
  std::vector<float> now(64);
  dev.d2h(std::span<float>(now), buf);
  EXPECT_EQ(now, host);
}

TEST(FaultStream, EventsCarryAndPropagateErrors) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(16);
  const auto host = iota_host(16);
  Stream bad(dev);
  Stream good(dev);
  dev.faults().arm(FaultKind::TransferTransient, 1);
  dev.h2d_async(buf, std::span<const float>(host), bad);
  ASSERT_TRUE(bad.poisoned());

  Event e;
  bad.record(e);
  EXPECT_TRUE(e.recorded());
  EXPECT_FALSE(e.ok());

  // Waiting on a failed event adopts the error (the dependency can never
  // be satisfied), poisoning the waiting stream too.
  good.wait(e);
  EXPECT_TRUE(good.poisoned());
  EXPECT_THROW(dev.sync(good), TransientTransferError);
  good.clear_error();
  bad.clear_error();
}

TEST(FaultLaunch, SerialLaunchFailThrowsAndRunsNothing) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  dev.h2d(buf, std::span<const float>(host));
  DoubleKernel k(buf);
  dev.faults().arm(FaultKind::LaunchFail, 1);
  EXPECT_THROW(dev.launch(k), KernelLaunchError);
  // The kernel must not have touched the data.
  std::vector<float> now(64);
  dev.d2h(std::span<float>(now), buf);
  EXPECT_EQ(now, host);
  // The next launch works and doubles everything.
  dev.launch(k);
  dev.d2h(std::span<float>(now), buf);
  for (std::size_t i = 0; i < now.size(); ++i) {
    EXPECT_EQ(now[i], 2.0f * host[i]);
  }
}

TEST(FaultLaunch, AsyncLaunchFailPoisonsStream) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  dev.h2d(buf, std::span<const float>(host));
  DoubleKernel k(buf);
  Stream s(dev);
  dev.faults().arm(FaultKind::LaunchFail, 1);
  const LaunchResult r = dev.launch_async(k, s);
  EXPECT_EQ(r.total_ms, 0.0);  // rejected at dispatch: no time charged
  EXPECT_TRUE(s.poisoned());
  EXPECT_THROW(dev.sync(s), KernelLaunchError);
  s.clear_error();
}

TEST(FaultDeviceLost, LostIsSticky) {
  Device dev(geforce_8800_gts());
  auto buf = dev.alloc<float>(64);
  const auto host = iota_host(64);
  dev.faults().arm(FaultKind::DeviceLost, 2);  // 2nd op: the h2d below
  std::vector<float> scratch(64);
  dev.d2h(std::span<float>(scratch), buf);
  EXPECT_FALSE(dev.lost());
  EXPECT_THROW(dev.h2d(buf, std::span<const float>(host)), DeviceLostError);
  EXPECT_TRUE(dev.lost());
  // Every further operation fails, disarmed or not...
  dev.faults().disarm_all();
  EXPECT_THROW(dev.alloc<float>(4), DeviceLostError);
  std::vector<float> out(64);
  EXPECT_THROW(dev.d2h(std::span<float>(out), buf), DeviceLostError);
  DoubleKernel k(buf);
  EXPECT_THROW(dev.launch(k), DeviceLostError);
  // ...except freeing, so RAII cleanup cannot throw.
  EXPECT_NO_THROW(buf = DeviceBuffer<float>());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(FaultOverhead, DisarmedInjectorIsBitIdenticalToNone) {
  // The same little workload on a pristine device and on one that carried
  // an injector (armed, then disarmed) must agree bit-for-bit in results
  // AND simulated time — the zero-overhead contract of the null check.
  auto workload = [](Device& dev) {
    auto buf = dev.alloc<float>(4096);
    const auto host = iota_host(4096);
    dev.h2d(buf, std::span<const float>(host));
    DoubleKernel k(buf);
    Stream s(dev);
    dev.launch_async(k, s);
    dev.sync(s);
    std::vector<float> out(4096);
    dev.d2h(std::span<float>(out), buf);
    return std::make_pair(dev.elapsed_ms(), out);
  };
  Device plain(geforce_8800_gts());
  Device carried(geforce_8800_gts());
  carried.faults().arm(FaultKind::TransferTransient, 1);
  carried.faults().disarm_all();
  EXPECT_FALSE(carried.fault_injection_armed());
  const auto a = workload(plain);
  const auto b = workload(carried);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FaultKinds, NamesRoundTripForEveryKind) {
  // Exhaustive by construction: kAllFaultKinds is pinned to
  // kFaultKindCount by a static_assert in sim/fault.h, so iterating it
  // covers every enumerator — adding a kind without a name (or vice
  // versa) fails here or fails to compile.
  std::set<std::string> seen;
  for (const FaultKind k : kAllFaultKinds) {
    const char* name = fault_kind_name(k);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?");
    EXPECT_EQ(fault_kind_from_name(name), k) << name;
    // Names are unique — a duplicate would make the inverse ambiguous.
    EXPECT_TRUE(seen.insert(name).second) << name;
  }
  EXPECT_EQ(seen.size(), kFaultKindCount);
}

}  // namespace
}  // namespace repro::sim
