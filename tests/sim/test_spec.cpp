// Table 1 of the paper, verified against the spec constructors.
#include "sim/spec.h"

#include <gtest/gtest.h>

namespace repro::sim {
namespace {

TEST(Spec, Table1_8800GT) {
  const GpuSpec g = geforce_8800_gt();
  EXPECT_EQ(g.core, "G92");
  EXPECT_EQ(g.num_sms, 14);
  EXPECT_EQ(g.total_sps(), 112);
  EXPECT_NEAR(g.peak_gflops(), 336.0, 0.5);
  EXPECT_NEAR(g.peak_bandwidth_gbs(), 57.6, 0.1);
  EXPECT_EQ(g.device_memory_bytes, 512ull << 20);
  EXPECT_EQ(g.pcie.gen, PcieGen::Gen2_0);
}

TEST(Spec, Table1_8800GTS) {
  const GpuSpec g = geforce_8800_gts();
  EXPECT_EQ(g.core, "G92");
  EXPECT_EQ(g.total_sps(), 128);
  EXPECT_NEAR(g.peak_gflops(), 416.0, 0.5);
  EXPECT_NEAR(g.peak_bandwidth_gbs(), 62.0, 0.1);
}

TEST(Spec, Table1_8800GTX) {
  const GpuSpec g = geforce_8800_gtx();
  EXPECT_EQ(g.core, "G80");
  EXPECT_EQ(g.total_sps(), 128);
  EXPECT_NEAR(g.peak_gflops(), 345.6, 0.5);
  EXPECT_NEAR(g.peak_bandwidth_gbs(), 86.4, 0.1);
  EXPECT_EQ(g.device_memory_bytes, 768ull << 20);
  EXPECT_EQ(g.pcie.gen, PcieGen::Gen1_1);
  EXPECT_EQ(g.dram.channels, 6);  // 384-bit bus
}

TEST(Spec, ArchitecturalConstantsCC1x) {
  for (const auto& g : all_gpus()) {
    EXPECT_EQ(g.registers_per_sm, 8192) << g.name;
    EXPECT_EQ(g.shmem_per_sm, 16u * 1024) << g.name;
    EXPECT_EQ(g.max_threads_per_sm, 768) << g.name;
    EXPECT_EQ(g.warp_size, 32) << g.name;
  }
}

TEST(Spec, GpuOrderMatchesPaper) {
  const auto& gpus = all_gpus();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_EQ(gpus[0].name, "8800 GT");
  EXPECT_EQ(gpus[1].name, "8800 GTS");
  EXPECT_EQ(gpus[2].name, "8800 GTX");
}

TEST(Spec, CpuPeaks) {
  // Section 2: "peak performance of the latest AMD Phenom 9500 ... is
  // 70.4 GFLOPS in single precision".
  EXPECT_NEAR(amd_phenom_9500().peak_gflops(), 70.4, 0.1);
  EXPECT_LT(amd_phenom_9500().stream_bw_gbs, 10.0);
}

TEST(Spec, PowerTable13Values) {
  EXPECT_EQ(power_cpu_riva128().idle_watts, 126.0);
  EXPECT_EQ(power_cpu_riva128().fft_load_watts, 140.0);
  EXPECT_EQ(power_for_gpu(geforce_8800_gtx()).fft_load_watts, 290.0);
  EXPECT_EQ(power_for_gpu(geforce_8800_gt()).idle_watts, 180.0);
}

}  // namespace
}  // namespace repro::sim
