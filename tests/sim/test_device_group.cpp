// DeviceGroup: construction, bridge derating, the shared timeline, host
// staging accounting, and the degenerate group-of-one guarantees.
#include "sim/device_group.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/pcie.h"

namespace repro::sim {
namespace {

TEST(DeviceGroup, HomogeneousConstructionReplicatesTheSpec) {
  DeviceGroup group(4, geforce_8800_gts());
  ASSERT_EQ(group.size(), 4u);
  for (std::size_t d = 0; d < group.size(); ++d) {
    EXPECT_EQ(group.device(d).spec().name, geforce_8800_gts().name);
    EXPECT_EQ(group.device(d).spec().device_memory_bytes,
              geforce_8800_gts().device_memory_bytes);
  }
}

TEST(DeviceGroup, MixedSpecsKeepTheirIdentity) {
  DeviceGroup group({geforce_8800_gt(), geforce_8800_gtx()});
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group.device(0).spec().name, geforce_8800_gt().name);
  EXPECT_EQ(group.device(1).spec().name, geforce_8800_gtx().name);
  EXPECT_NE(group.device(0).spec().num_sms, group.device(1).spec().num_sms);
}

TEST(DeviceGroup, BridgeDeratesPerCardPcieBandwidth) {
  const GpuSpec gts = geforce_8800_gts();  // 5.2 / 5.0 GB/s
  const GroupTopology topo = GroupTopology::pcie2_chipset();  // 12.8 GB/s

  // One or two cards: each card's own link is the bottleneck.
  for (std::size_t n : {1u, 2u}) {
    DeviceGroup group(n, gts, topo);
    for (std::size_t d = 0; d < n; ++d) {
      EXPECT_DOUBLE_EQ(group.device(d).spec().pcie.h2d_gbs, gts.pcie.h2d_gbs);
      EXPECT_DOUBLE_EQ(group.device(d).spec().pcie.d2h_gbs, gts.pcie.d2h_gbs);
    }
  }
  // Four and eight cards: the shared bridge is, at aggregate/N.
  DeviceGroup four(4, gts, topo);
  EXPECT_DOUBLE_EQ(four.device(0).spec().pcie.h2d_gbs, 12.8 / 4.0);
  EXPECT_DOUBLE_EQ(four.device(0).spec().pcie.d2h_gbs, 12.8 / 4.0);
  DeviceGroup eight(8, gts, topo);
  EXPECT_DOUBLE_EQ(eight.device(0).spec().pcie.h2d_gbs, 12.8 / 8.0);

  // An unshared topology never derates.
  DeviceGroup ideal(8, gts, GroupTopology::unshared());
  EXPECT_DOUBLE_EQ(ideal.device(0).spec().pcie.h2d_gbs, gts.pcie.h2d_gbs);
}

TEST(DeviceGroup, DeratedLinkSlowsSimulatedTransfers) {
  const std::size_t bytes = 8 << 20;
  DeviceGroup one(1, geforce_8800_gts());
  DeviceGroup four(4, geforce_8800_gts());
  const double t1 = pcie_transfer_ns(one.device(0).spec().pcie,
                                     TransferDir::HostToDevice, bytes);
  const double t4 = pcie_transfer_ns(four.device(0).spec().pcie,
                                     TransferDir::HostToDevice, bytes);
  EXPECT_GT(t4, t1 * 1.5);  // 5.2 -> 3.2 GB/s
}

TEST(DeviceGroup, ElapsedIsTheSlowestMember) {
  DeviceGroup group(2, geforce_8800_gts());
  auto b0 = group.device(0).alloc<float>(1 << 16);
  auto b1 = group.device(1).alloc<float>(1 << 10);
  std::vector<float> big(b0.size());
  std::vector<float> small(b1.size());
  group.device(0).h2d(b0, std::span<const float>(big));
  group.device(1).h2d(b1, std::span<const float>(small));
  EXPECT_DOUBLE_EQ(group.elapsed_ms(), group.device(0).elapsed_ms());
  EXPECT_GT(group.device(0).elapsed_ms(), group.device(1).elapsed_ms());

  group.reset_clocks();
  EXPECT_EQ(group.elapsed_ms(), 0.0);
  EXPECT_EQ(group.device(0).elapsed_ms(), 0.0);
}

TEST(DeviceGroup, SyncAllReachesEveryMember) {
  DeviceGroup group(2, geforce_8800_gts());
  Stream s0(group.device(0));
  Stream s1(group.device(1));
  group.device(0).submit_timed(s0, Engine::Compute, 5.0, "k0");
  group.device(1).submit_timed(s1, Engine::Compute, 9.0, "k1");
  group.sync_all();
  EXPECT_NEAR(group.device(0).elapsed_ms(), 5.0, 1e-12);
  EXPECT_NEAR(group.device(1).elapsed_ms(), 9.0, 1e-12);
  EXPECT_NEAR(group.elapsed_ms(), 9.0, 1e-12);
}

TEST(DeviceGroup, PeakBytesInFlightCombinesDevicesAndHostStaging) {
  DeviceGroup group(2, geforce_8800_gts());
  {
    auto a = group.device(0).alloc<float>(1 << 20);  // 4 MB on card 0
    auto b = group.device(1).alloc<float>(1 << 18);  // 1 MB on card 1
    // Per-card memories are independent: the device part is the max.
    EXPECT_EQ(group.peak_bytes_in_flight(), std::size_t{4} << 20);
  }
  {
    const DeviceGroup::HostStagingLease lease(group, 3 << 20);
    EXPECT_EQ(group.host_staging_bytes(), std::size_t{3} << 20);
    EXPECT_EQ(group.peak_bytes_in_flight(), std::size_t{7} << 20);
  }
  // The lease is released but the peak persists (a high-water mark).
  EXPECT_EQ(group.host_staging_bytes(), 0u);
  EXPECT_EQ(group.peak_bytes_in_flight(), std::size_t{7} << 20);

  group.reset_peak_stats();
  EXPECT_EQ(group.peak_host_staging_bytes(), 0u);
  EXPECT_EQ(group.peak_bytes_in_flight(), 0u);
}

TEST(DeviceGroup, HostStagingLeaseMovesSafely) {
  DeviceGroup group(1, geforce_8800_gt());
  DeviceGroup::HostStagingLease outer;
  {
    DeviceGroup::HostStagingLease inner(group, 1024);
    outer = std::move(inner);
  }
  EXPECT_EQ(group.host_staging_bytes(), 1024u);
  outer.release();
  EXPECT_EQ(group.host_staging_bytes(), 0u);
}

TEST(DeviceGroup, GroupOfOneKeepsTheBareDeviceTimeline) {
  // The degenerate-path guard at the sim layer: a group of one performs
  // identically to a bare Device (no bridge derate below the card rate, no
  // scheduling overhead). The gpufft layer extends this to the full
  // sharded-vs-out-of-core timeline (test_sharded.cpp).
  const GpuSpec spec = geforce_8800_gts();
  DeviceGroup group(1, spec);
  Device bare(spec);
  EXPECT_DOUBLE_EQ(group.device(0).spec().pcie.h2d_gbs, spec.pcie.h2d_gbs);
  EXPECT_DOUBLE_EQ(group.device(0).spec().pcie.d2h_gbs, spec.pcie.d2h_gbs);

  auto run = [](Device& dev) {
    auto buf = dev.alloc<float>(1 << 16);
    std::vector<float> host(buf.size());
    std::iota(host.begin(), host.end(), 0.0f);
    Stream s0(dev);
    Stream s1(dev);
    dev.h2d_async(buf, std::span<const float>(host), s0);
    dev.submit_timed(s1, Engine::Compute, 2.5, "k");
    std::vector<float> back(buf.size());
    dev.d2h_async(std::span<float>(back), buf, s1);
    dev.sync_all();
    return dev.elapsed_ms();
  };
  EXPECT_DOUBLE_EQ(run(group.device(0)), run(bare));
}

TEST(DeviceGroup, RejectsEmptyAndBadTopology) {
  EXPECT_THROW(DeviceGroup(std::vector<GpuSpec>{}), Error);
  EXPECT_THROW(DeviceGroup(0, geforce_8800_gt()), Error);
  EXPECT_THROW(DeviceGroup(2, geforce_8800_gt(), GroupTopology{0.0, 1.0}),
               Error);
}

// ---- Health scoreboard & quarantine ----

TEST(DeviceGroupHealth, SweepQuarantinesMembersPastTheWindowedThreshold) {
  DeviceGroup group(3, geforce_8800_gts());
  ASSERT_EQ(group.health_policy().quarantine_threshold, 3u);

  // Two incidents inside one window: below the threshold, no action.
  group.device(1).health().verify_failures += 2;
  EXPECT_TRUE(group.sweep_health().empty());
  EXPECT_FALSE(group.quarantined(1));

  // The sweep re-anchored the window, so two more still do not trip it —
  // old incidents age out instead of condemning a device forever.
  group.device(1).health().verify_failures += 2;
  EXPECT_TRUE(group.sweep_health().empty());

  // Three fresh incidents in one window: quarantined.
  group.device(1).health().verify_failures += 3;
  const auto newly = group.sweep_health();
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 1u);
  EXPECT_TRUE(group.quarantined(1));
  EXPECT_EQ(group.quarantines_total(), 1u);

  // The schedulable set shrinks; alive membership does not.
  EXPECT_EQ(group.alive_count(), 3u);
  const auto sched = group.schedulable_members();
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched[0], 0u);
  EXPECT_EQ(sched[1], 2u);
  EXPECT_EQ(group.schedulable_count(), 2u);
}

TEST(DeviceGroupHealth, LastSchedulableMemberIsNeverQuarantined) {
  DeviceGroup group(2, geforce_8800_gts());
  group.device(0).health().verify_failures += 5;
  ASSERT_EQ(group.sweep_health().size(), 1u);
  EXPECT_TRUE(group.quarantined(0));

  // Member 1 now carries the fleet; no matter how it misbehaves, the
  // sweep must keep one member serving.
  group.device(1).health().verify_failures += 50;
  EXPECT_TRUE(group.sweep_health().empty());
  EXPECT_FALSE(group.quarantined(1));
  EXPECT_EQ(group.schedulable_count(), 1u);
}

TEST(DeviceGroupHealth, CleanProbesReinstateAfterTheConfiguredStreak) {
  HealthPolicy policy;
  policy.quarantine_threshold = 1;
  policy.clean_probes_to_reinstate = 2;
  DeviceGroup group(3, geforce_8800_gts());
  group.set_health_policy(policy);

  group.device(2).health().transient_retries += 1;
  ASSERT_EQ(group.sweep_health().size(), 1u);
  ASSERT_TRUE(group.quarantined(2));

  // One clean probe is not enough; a failed probe resets the streak.
  EXPECT_FALSE(group.note_clean_probe(2));
  group.note_failed_probe(2);
  EXPECT_FALSE(group.note_clean_probe(2));
  EXPECT_TRUE(group.note_clean_probe(2));
  EXPECT_FALSE(group.quarantined(2));
  EXPECT_EQ(group.reinstatements_total(), 1u);
  EXPECT_EQ(group.schedulable_count(), 3u);
}

TEST(DeviceGroupHealth, ScheduleFallsBackToAliveWhenAllAreQuarantined) {
  // Quarantine can only be entered while another member still serves,
  // but a member can die *after* its peers were quarantined. The
  // schedulable set must then fall back to the alive set rather than
  // going empty.
  HealthPolicy policy;
  policy.quarantine_threshold = 1;
  DeviceGroup group(2, geforce_8800_gts());
  group.set_health_policy(policy);
  group.device(0).health().verify_failures += 1;
  ASSERT_EQ(group.sweep_health().size(), 1u);
  group.faults(1).arm(FaultKind::DeviceLost, 1);
  EXPECT_THROW(group.device(1).alloc<float>(16), DeviceLostError);
  ASSERT_TRUE(group.device(1).lost());
  const auto sched = group.schedulable_members();
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched[0], 0u);
}

}  // namespace
}  // namespace repro::sim
