// Interconnect topologies: routing, bisection arithmetic, the per-link
// FIFO, and DeviceGroup::d2d_async timing/functional behavior on top of
// them.
#include "sim/topology/topology.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "sim/device_group.h"
#include "sim/fault.h"
#include "sim/topology/pcie_tree.h"
#include "sim/topology/peer_mesh.h"
#include "sim/topology/torus2d.h"

namespace repro::sim {
namespace {

TEST(Topology, PcieTreeHasNoPeerPathsAndBridgeBisection) {
  PcieTreeTopology tree(8);
  EXPECT_EQ(tree.kind(), "pcie-tree");
  EXPECT_FALSE(tree.peer_capable());
  EXPECT_FALSE(tree.has_peer_path(0, 1));
  EXPECT_TRUE(tree.route(0, 1).empty());
  // All crossing bytes ride the one 12.8 GB/s bridge: min(agg)/2.
  EXPECT_DOUBLE_EQ(tree.bisection_gbs(), 6.4);
  // The PR 3 derate rule: aggregate/N beats a fast card.
  EXPECT_DOUBLE_EQ(tree.host_share_h2d_gbs(5.2), 12.8 / 8.0);
  EXPECT_DOUBLE_EQ(tree.host_share_h2d_gbs(1.0), 1.0);
}

TEST(Topology, PeerMeshRoutesAreSingleHop) {
  PeerMeshTopology mesh(4, /*link_gbs=*/16.0, /*link_latency_us=*/2.0);
  EXPECT_EQ(mesh.kind(), "peer-mesh");
  EXPECT_TRUE(mesh.peer_capable());
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      const auto hops = mesh.route(a, b);
      ASSERT_EQ(hops.size(), 2u);
      EXPECT_EQ(hops.front(), a);
      EXPECT_EQ(hops.back(), b);
      EXPECT_DOUBLE_EQ(mesh.link_gbs(a, b), 16.0);
      EXPECT_DOUBLE_EQ(mesh.link_latency_ms(a, b), 2e-3);
    }
  }
  // One send port per card bounds the crossing rate: floor(N/2) * link.
  EXPECT_DOUBLE_EQ(mesh.bisection_gbs(), 2.0 * 16.0);
  EXPECT_DOUBLE_EQ(PeerMeshTopology(64).bisection_gbs(), 32.0 * 16.0);
  // Unconstrained host aggregate: every card keeps its own link.
  EXPECT_DOUBLE_EQ(mesh.host_share_h2d_gbs(5.2), 5.2);
}

TEST(Topology, TorusRoutesAreDimensionOrdered) {
  Torus2DTopology torus(4, 4);
  // X within the source row first, then Y within the dest column.
  EXPECT_EQ(torus.route(0, 5), (std::vector<std::size_t>{0, 1, 5}));
  // Wraparound takes the shorter direction: col 0 -> col 3 is one step
  // backward, not three forward.
  EXPECT_EQ(torus.route(0, 3), (std::vector<std::size_t>{0, 3}));
  // Ties go forward: col 0 -> col 2 is two steps either way.
  EXPECT_EQ(torus.route(0, 2), (std::vector<std::size_t>{0, 1, 2}));
  // Both dimensions: (0,0) -> (2,1): X to col 1, then Y rows 0->1->2.
  EXPECT_EQ(torus.route(0, 9), (std::vector<std::size_t>{0, 1, 5, 9}));
  // Determinism: the model replays the same wires the scheduler used.
  EXPECT_EQ(torus.route(0, 9), torus.route(0, 9));
  EXPECT_TRUE(torus.adjacent(0, 1));
  EXPECT_TRUE(torus.adjacent(0, 3));   // row wrap link
  EXPECT_TRUE(torus.adjacent(0, 12));  // column wrap link
  EXPECT_FALSE(torus.adjacent(0, 5));
}

TEST(Topology, TorusBisectionArithmetic) {
  // 4x4 at 12 GB/s: cutting either dimension severs 2 rings x 4 nodes.
  EXPECT_DOUBLE_EQ(Torus2DTopology(4, 4).bisection_gbs(), 2.0 * 4 * 12.0);
  // Size-2 dimensions have coincident wrap and direct links: one ring.
  EXPECT_DOUBLE_EQ(Torus2DTopology(2, 2).bisection_gbs(), 1.0 * 2 * 12.0);
  EXPECT_DOUBLE_EQ(Torus2DTopology(1, 2).bisection_gbs(), 12.0);
  // Rectangles cut the cheaper dimension: slicing the 8-ring severs
  // 2 rings x 2 rows, cheaper than slicing the 2-ring (1 ring x 8 cols).
  EXPECT_DOUBLE_EQ(Torus2DTopology(2, 8).bisection_gbs(), 2.0 * 2 * 12.0);
  // Degenerate single node: report the link rate, not zero.
  EXPECT_DOUBLE_EQ(Torus2DTopology(1, 1).bisection_gbs(), 12.0);
  // Square torus vs mesh: 2*sqrt(N) vs N/2 rings is the crossover the
  // planner sees — equal at N=16, mesh ahead beyond.
  EXPECT_LT(Torus2DTopology(8, 8, 16.0).bisection_gbs(),
            PeerMeshTopology(64, 16.0).bisection_gbs());
}

TEST(Topology, LinkFifoSerializesConcurrentLegs) {
  PeerMeshTopology mesh(2);
  // Two legs ready at t=0 over the same directed wire queue back to back.
  const double s0 = mesh.reserve_link(0, 1, 0.0, 1.0);
  const double s1 = mesh.reserve_link(0, 1, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s0, 0.0);
  EXPECT_DOUBLE_EQ(s1, 1.0);
  // Full duplex: the reverse direction is independent.
  EXPECT_DOUBLE_EQ(mesh.reserve_link(1, 0, 0.0, 1.0), 0.0);
  mesh.reset_links();
  EXPECT_DOUBLE_EQ(mesh.reserve_link(0, 1, 0.0, 1.0), 0.0);
}

TEST(Topology, LegacyGroupTopologyAndPcieTreeDerateIdentically) {
  const GpuSpec gts = geforce_8800_gts();
  DeviceGroup legacy(4, gts, GroupTopology::pcie2_chipset());
  DeviceGroup tree(4, gts, std::make_shared<PcieTreeTopology>(4));
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(legacy.device(d).spec().pcie.h2d_gbs,
                     tree.device(d).spec().pcie.h2d_gbs);
    EXPECT_DOUBLE_EQ(legacy.device(d).spec().pcie.d2h_gbs,
                     tree.device(d).spec().pcie.d2h_gbs);
  }
  EXPECT_EQ(tree.topo().kind(), "pcie-tree");
  // The unshared() sentinel keeps full card rate.
  DeviceGroup ideal(4, gts, GroupTopology::unshared());
  EXPECT_DOUBLE_EQ(ideal.device(0).spec().pcie.h2d_gbs, gts.pcie.h2d_gbs);
}

TEST(Topology, MeshKeepsFullHostLinksPerCard) {
  const GpuSpec gts = geforce_8800_gts();
  DeviceGroup mesh(8, gts, std::make_shared<PeerMeshTopology>(8));
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_DOUBLE_EQ(mesh.device(d).spec().pcie.h2d_gbs, gts.pcie.h2d_gbs);
  }
}

TEST(Topology, D2dAsyncMovesDataAndChargesWireTime) {
  DeviceGroup group(2, geforce_8800_gts(),
                    std::make_shared<PeerMeshTopology>(2, 16.0, 2.0));
  auto src = group.device(0).alloc<float>(1 << 16);
  auto dst = group.device(1).alloc<float>(1 << 16);
  std::vector<float> host(src.size());
  std::iota(host.begin(), host.end(), 1.0f);
  std::copy(host.begin(), host.end(), src.data());

  Stream s0(group.device(0));
  Stream s1(group.device(1));
  std::vector<Stream*> exch{&s0, &s1};
  const auto legs = group.d2d_async(0, 1, src, 0, dst, 0, src.size(), s0,
                                    std::span<Stream* const>(exch));
  ASSERT_EQ(legs.size(), 1u);
  EXPECT_EQ(legs[0].from, 0u);
  EXPECT_EQ(legs[0].to, 1u);
  const double bytes = static_cast<double>(src.size() * sizeof(float));
  EXPECT_NEAR(legs[0].dur_ms, 2e-3 + bytes / (16.0 * 1e6), 1e-12);
  // Functional payload arrives regardless of timing.
  EXPECT_TRUE(std::equal(host.begin(), host.end(), dst.data()));
  // Both endpoints' streams carry the leg.
  EXPECT_GE(s0.ready_ms(), legs[0].dur_ms - 1e-12);
  EXPECT_GE(s1.ready_ms(), legs[0].done_ms - 1e-12);
}

TEST(Topology, D2dAsyncStoreAndForwardOccupiesIntermediateHops) {
  // 1x4 ring: 0 -> 2 forwards through 1 (ties go forward).
  DeviceGroup group(4, geforce_8800_gts(),
                    std::make_shared<Torus2DTopology>(1, 4, 12.0, 1.5));
  auto src = group.device(0).alloc<float>(4096);
  auto dst = group.device(2).alloc<float>(4096);
  std::vector<float> host(src.size());
  std::iota(host.begin(), host.end(), 0.5f);
  std::copy(host.begin(), host.end(), src.data());

  std::vector<std::unique_ptr<Stream>> streams;
  std::vector<Stream*> exch;
  for (std::size_t d = 0; d < group.size(); ++d) {
    streams.push_back(std::make_unique<Stream>(group.device(d)));
    exch.push_back(streams.back().get());
  }
  const auto legs = group.d2d_async(0, 2, src, 0, dst, 0, src.size(),
                                    *streams[0],
                                    std::span<Stream* const>(exch));
  ASSERT_EQ(legs.size(), 2u);
  EXPECT_EQ(legs[0].from, 0u);
  EXPECT_EQ(legs[0].to, 1u);
  EXPECT_EQ(legs[1].from, 1u);
  EXPECT_EQ(legs[1].to, 2u);
  // Store and forward: hop 2 starts no earlier than hop 1 lands.
  EXPECT_GE(legs[1].start_ms, legs[0].start_ms + legs[0].dur_ms - 1e-12);
  // The forwarder's exchange stream carried both the receive and the
  // resend, so its tail covers the whole relay.
  EXPECT_GE(streams[1]->ready_ms(), legs[1].done_ms - 1e-12);
  EXPECT_TRUE(std::equal(host.begin(), host.end(), dst.data()));
}

TEST(Topology, D2dAsyncSelfCopyStaysLocal) {
  DeviceGroup group(2, geforce_8800_gts(),
                    std::make_shared<PeerMeshTopology>(2));
  auto src = group.device(0).alloc<float>(1024);
  auto dst = group.device(0).alloc<float>(1024);
  std::vector<float> host(src.size());
  std::iota(host.begin(), host.end(), 3.0f);
  std::copy(host.begin(), host.end(), src.data());
  Stream s0(group.device(0));
  std::vector<Stream*> exch{&s0, nullptr};
  const auto legs = group.d2d_async(0, 0, src, 0, dst, 0, src.size(), s0,
                                    std::span<Stream* const>(exch));
  ASSERT_EQ(legs.size(), 1u);
  EXPECT_EQ(legs[0].from, legs[0].to);
  EXPECT_NEAR(legs[0].dur_ms,
              local_copy_ms(group.device(0).spec(), 1024 * sizeof(float)),
              1e-12);
  EXPECT_TRUE(std::equal(host.begin(), host.end(), dst.data()));
}

TEST(Topology, D2dAsyncThrowsWhenARouteDeviceIsLost) {
  DeviceGroup group(4, geforce_8800_gts(),
                    std::make_unique<Torus2DTopology>(1, 4));
  // Lose the forwarder on the 0 -> 2 route (device 1).
  group.faults(1).arm(FaultKind::DeviceLost, 1);
  EXPECT_THROW((void)group.device(1).alloc<float>(16), DeviceLostError);
  EXPECT_TRUE(group.device(1).lost());

  auto src = group.device(0).alloc<float>(256);
  auto dst = group.device(2).alloc<float>(256);
  std::vector<std::unique_ptr<Stream>> streams;
  std::vector<Stream*> exch;
  for (std::size_t d = 0; d < group.size(); ++d) {
    if (group.device(d).lost()) {
      streams.push_back(nullptr);
      exch.push_back(nullptr);
      continue;
    }
    streams.push_back(std::make_unique<Stream>(group.device(d)));
    exch.push_back(streams.back().get());
  }
  EXPECT_THROW(group.d2d_async(0, 2, src, 0, dst, 0, src.size(), *streams[0],
                               std::span<Stream* const>(exch)),
               DeviceLostError);
}

TEST(Topology, GroupResetClocksClearsLinkFifos) {
  DeviceGroup group(2, geforce_8800_gts(),
                    std::make_shared<PeerMeshTopology>(2));
  EXPECT_DOUBLE_EQ(group.topo().reserve_link(0, 1, 0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(group.topo().reserve_link(0, 1, 0.0, 5.0), 5.0);
  group.reset_clocks();
  EXPECT_DOUBLE_EQ(group.topo().reserve_link(0, 1, 0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace repro::sim
