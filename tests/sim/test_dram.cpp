// Behavioural invariants of the DRAM model: these are the mechanisms the
// paper's algorithm exploits, so the model must get their *ordering* right
// (sequential fastest, giant power-of-two strides slowest, many interleaved
// streams slower than one).
#include "sim/dram.h"

#include <gtest/gtest.h>

#include "sim/spec.h"

namespace repro::sim {
namespace {

std::vector<Transaction> stream_seq(std::uint64_t base, std::size_t n,
                                    std::uint32_t bytes = 64,
                                    std::uint64_t stride = 64) {
  std::vector<Transaction> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back({base + i * stride, bytes});
  }
  return v;
}

class DramTest : public ::testing::Test {
 protected:
  GpuSpec gpu_ = geforce_8800_gtx();
  DramModel dram_{gpu_.dram, gpu_.peak_bandwidth_gbs()};
};

TEST_F(DramTest, SequentialStreamNearsPeakEfficiency) {
  const auto s = stream_seq(0, 1 << 16);
  const double gbs = dram_.effective_bandwidth_gbs({&s, 1});
  const double peak = gpu_.peak_bandwidth_gbs();
  EXPECT_GT(gbs, 0.75 * peak);
  EXPECT_LE(gbs, gpu_.dram.peak_efficiency * peak * 1.001);
}

TEST_F(DramTest, LargePow2StrideIsMuchSlower) {
  // Stride of row_bytes * banks * channels hammers one bank's rows.
  const std::uint64_t bad_stride = static_cast<std::uint64_t>(
      gpu_.dram.row_bytes) * gpu_.dram.banks_per_channel *
      gpu_.dram.channels * gpu_.dram.interleave / gpu_.dram.interleave;
  const auto seq = stream_seq(0, 4096);
  const auto strided = stream_seq(0, 4096, 64, bad_stride * 64);
  const double gbs_seq = dram_.effective_bandwidth_gbs({&seq, 1});
  const double gbs_str = dram_.effective_bandwidth_gbs({&strided, 1});
  EXPECT_LT(gbs_str, 0.5 * gbs_seq);
}

TEST_F(DramTest, BandwidthDecreasesWithStreamCount) {
  // Section 2.1: 71.7 GB/s for one stream down to 30.7 GB/s for 256
  // streams (on the GTX). As in the multirow measurement, each warp's
  // transaction stream touches every data stream in turn (the streams are
  // 512 KB apart), so a warp's access window spreads with the stream
  // count.
  auto run = [&](std::size_t n_streams) {
    const std::size_t warps = 16;
    const std::size_t rounds = 1024 / n_streams;
    std::vector<std::vector<Transaction>> streams(warps);
    for (std::size_t w = 0; w < warps; ++w) {
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t s = 0; s < n_streams; ++s) {
          streams[w].push_back(
              Transaction{s * (512ull << 10) + (r * warps + w) * 128, 128});
        }
      }
    }
    return dram_.effective_bandwidth_gbs(streams);
  };
  const double one = run(1);
  const double sixteen = run(16);
  const double many = run(256);
  EXPECT_GT(one, sixteen);
  EXPECT_GT(sixteen, many);
  EXPECT_LT(many, 0.75 * one);
}

TEST_F(DramTest, InterleavedNeighboursShareRows) {
  // Two streams walking adjacent halves of the same rows should not be
  // slower than 2x the time of a single combined stream.
  const auto combined = stream_seq(0, 8192);
  std::vector<std::vector<Transaction>> pair(2);
  for (std::size_t i = 0; i < 4096; ++i) {
    pair[0].push_back({i * 128, 64});
    pair[1].push_back({i * 128 + 64, 64});
  }
  const double t_combined = dram_.replay_one(combined);
  const double t_pair = dram_.replay(pair);
  EXPECT_NEAR(t_pair, t_combined, 0.25 * t_combined);
}

TEST_F(DramTest, IdealTimeMatchesPinBandwidthTimesEfficiency) {
  const std::uint64_t bytes = 1ull << 20;
  const double ns = dram_.ideal_time_ns(bytes);
  const double gbs = static_cast<double>(bytes) / ns;
  EXPECT_NEAR(gbs, gpu_.peak_bandwidth_gbs() * gpu_.dram.peak_efficiency,
              0.01);
}

TEST_F(DramTest, SmallTransactionsWasteBandwidth) {
  // 32-byte transactions move half the data per row activity of 64-byte
  // ones: same transaction count at half the bytes must not be more than
  // ~60% of the 64-byte stream's bandwidth.
  const auto big = stream_seq(0, 8192, 64, 64);
  const auto small = stream_seq(0, 8192, 32, 32);
  const double gbs_big = dram_.effective_bandwidth_gbs({&big, 1});
  const double gbs_small = dram_.effective_bandwidth_gbs({&small, 1});
  EXPECT_NEAR(gbs_small, gbs_big, gbs_big * 0.05);  // bytes/ns equal here
}

TEST_F(DramTest, EmptyStreamsCostNothing) {
  std::vector<std::vector<Transaction>> none;
  EXPECT_EQ(dram_.replay(none), 0.0);
  EXPECT_EQ(dram_.effective_bandwidth_gbs(none), 0.0);
}

TEST_F(DramTest, DeterministicReplay) {
  const auto s = stream_seq(12345, 1000, 64, 2048);
  const double a = dram_.replay_one(s);
  const double b = dram_.replay_one(s);
  EXPECT_EQ(a, b);
}

TEST(DramChannels, WiderBusIsFaster) {
  const GpuSpec gt = geforce_8800_gt();    // 256-bit
  const GpuSpec gtx = geforce_8800_gtx();  // 384-bit
  DramModel d_gt(gt.dram, gt.peak_bandwidth_gbs());
  DramModel d_gtx(gtx.dram, gtx.peak_bandwidth_gbs());
  const auto s = stream_seq(0, 1 << 14);
  EXPECT_GT(d_gtx.effective_bandwidth_gbs({&s, 1}),
            d_gt.effective_bandwidth_gbs({&s, 1}));
}

}  // namespace
}  // namespace repro::sim
