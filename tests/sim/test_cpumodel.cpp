#include "sim/cpumodel.h"

#include <gtest/gtest.h>

namespace repro::sim {
namespace {

TEST(CpuModel, ReportedFlopsConvention) {
  // 15 * N^3 * log2(N) for a cube (Section 4.1).
  const double f = reported_fft_flops(cube(256));
  EXPECT_NEAR(f, 15.0 * 256.0 * 256.0 * 256.0 * 8.0, 1.0);
}

TEST(CpuModel, Table11Phenom256) {
  // Paper: 195 ms, 10.3 GFLOPS for FFTW on the Phenom 9500.
  const CpuFftTiming t = cpu_fft3d_time(amd_phenom_9500(), cube(256));
  EXPECT_NEAR(t.total_ms, 195.0, 30.0);
  EXPECT_NEAR(t.gflops, 10.3, 1.7);
}

TEST(CpuModel, Table11Core2_256) {
  // Paper: 188 ms, 10.7 GFLOPS.
  const CpuFftTiming t = cpu_fft3d_time(intel_core2_q6700(), cube(256));
  EXPECT_NEAR(t.total_ms, 188.0, 30.0);
}

TEST(CpuModel, Table12Phenom512) {
  // Paper: 1.93 s, 9.40 GFLOPS for 512^3.
  const CpuFftTiming t = cpu_fft3d_time(amd_phenom_9500(), cube(512));
  EXPECT_NEAR(t.total_ms, 1930.0, 350.0);
  EXPECT_NEAR(t.gflops, 9.4, 1.8);
}

TEST(CpuModel, StridedAxesDominante) {
  const CpuFftTiming t = cpu_fft3d_time(amd_phenom_9500(), cube(256));
  EXPECT_LT(t.axis_ms[0], t.axis_ms[1]);  // X streams, Y strides
  EXPECT_LT(t.axis_ms[1], t.axis_ms[2]);  // Z strides worst
}

TEST(CpuModel, TimeScalesSuperlinearlyPastCalibration) {
  const CpuFftTiming small = cpu_fft3d_time(amd_phenom_9500(), cube(256));
  const CpuFftTiming large = cpu_fft3d_time(amd_phenom_9500(), cube(512));
  EXPECT_GT(large.total_ms, 8.0 * small.total_ms);  // 8x data + penalty
}

TEST(CpuModel, SmallSizesNoPenalty) {
  const CpuFftTiming t64 = cpu_fft3d_time(amd_phenom_9500(), cube(64));
  const CpuFftTiming t128 = cpu_fft3d_time(amd_phenom_9500(), cube(128));
  // Pure memory-bound scaling: 8x volume -> ~8x time (log factor absorbed
  // by the bandwidth bound).
  EXPECT_NEAR(t128.total_ms / t64.total_ms, 8.0, 0.8);
}

TEST(CpuModel, NonCubicShapes) {
  const CpuFftTiming t = cpu_fft3d_time(amd_phenom_9500(),
                                        Shape3{512, 512, 64});
  EXPECT_GT(t.total_ms, 0.0);
  EXPECT_GT(t.gflops, 0.0);
}

}  // namespace
}  // namespace repro::sim
