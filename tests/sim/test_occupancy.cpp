// Occupancy calculation vs known CUDA occupancy-calculator outcomes for
// compute capability 1.0/1.1, including the paper's two kernel classes.
#include "sim/occupancy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace repro::sim {
namespace {

TEST(Occupancy, PaperCoarseGrainedKernel) {
  // Steps 1-4: 16-point FFT per thread, 51-52 registers, 64 threads/block.
  // The paper sustains 128 threads per SM.
  const GpuSpec gpu = geforce_8800_gtx();
  const Occupancy o =
      compute_occupancy(gpu, BlockResources{64, 52, 0});
  EXPECT_EQ(o.blocks_per_sm, 2);  // 2*64*52 = 6656 regs; 3 blocks won't fit
  EXPECT_EQ(o.active_threads, 128);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
}

TEST(Occupancy, PaperFineGrainedKernel) {
  // Step 5: 64 threads, 8 registers each (4 complex values), shared memory
  // for the 256-point exchange.
  const GpuSpec gpu = geforce_8800_gtx();
  const Occupancy o = compute_occupancy(gpu, BlockResources{64, 10, 2112});
  EXPECT_GE(o.active_threads, 384);  // plenty of residency
}

TEST(Occupancy, MultirowFFT256CollapsesResidency) {
  // Section 3.1: a direct 256-point multirow FFT needs ~512+ registers per
  // thread, "only eight threads can be executed on each SM".
  const GpuSpec gpu = geforce_8800_gtx();
  const Occupancy o = compute_occupancy(gpu, BlockResources{8, 1024, 0});
  EXPECT_EQ(o.blocks_per_sm, 1);
  EXPECT_EQ(o.active_threads, 8);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
}

TEST(Occupancy, ThreadLimit) {
  const GpuSpec gpu = geforce_8800_gtx();
  // Tiny footprint: 256 threads/block, 4 regs -> capped by 768 threads/SM.
  const Occupancy o = compute_occupancy(gpu, BlockResources{256, 4, 0});
  EXPECT_EQ(o.blocks_per_sm, 3);
  EXPECT_EQ(o.active_threads, 768);
  EXPECT_DOUBLE_EQ(o.occupancy, 1.0);
}

TEST(Occupancy, BlockLimit) {
  const GpuSpec gpu = geforce_8800_gtx();
  const Occupancy o = compute_occupancy(gpu, BlockResources{32, 4, 0});
  EXPECT_EQ(o.blocks_per_sm, 8);  // max blocks per SM
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Blocks);
}

TEST(Occupancy, SharedMemoryLimit) {
  const GpuSpec gpu = geforce_8800_gtx();
  const Occupancy o = compute_occupancy(gpu, BlockResources{64, 8, 9000});
  EXPECT_EQ(o.blocks_per_sm, 1);  // 2x9KB > 16KB
  EXPECT_EQ(o.limiter, Occupancy::Limiter::SharedMemory);
}

TEST(Occupancy, RegisterAllocationGranularity) {
  const GpuSpec gpu = geforce_8800_gtx();
  // 65 threads * 20 regs = 1300 -> 1536 (256-register granule).
  EXPECT_EQ(allocated_registers(gpu, BlockResources{65, 20, 0}), 1536u);
  EXPECT_EQ(allocated_shmem(BlockResources{64, 8, 100}), 512u);
  EXPECT_EQ(allocated_shmem(BlockResources{64, 8, 513}), 1024u);
}

TEST(Occupancy, ImpossibleBlocksThrow) {
  const GpuSpec gpu = geforce_8800_gtx();
  EXPECT_THROW(compute_occupancy(gpu, BlockResources{1024, 8, 0}), Error);
  EXPECT_THROW(compute_occupancy(gpu, BlockResources{64, 200, 0}), Error);
  EXPECT_THROW(compute_occupancy(gpu, BlockResources{64, 8, 20000}), Error);
}

TEST(Occupancy, WarpCount) {
  const GpuSpec gpu = geforce_8800_gts();
  const Occupancy o = compute_occupancy(gpu, BlockResources{96, 10, 0});
  EXPECT_EQ(o.active_warps, o.blocks_per_sm * 3);
}

}  // namespace
}  // namespace repro::sim
