#include "sim/pcie.h"

#include <gtest/gtest.h>

namespace repro::sim {
namespace {

TEST(Pcie, Gen2TransferRatesMatchTable10) {
  // Table 10: 128 MB moves host-to-device in ~25.9 ms on the 8800 GT.
  const PcieSpec pcie = geforce_8800_gt().pcie;
  const std::uint64_t bytes = 128ull << 20;
  const double ms =
      pcie_transfer_ns(pcie, TransferDir::HostToDevice, bytes) * 1e-6;
  EXPECT_NEAR(ms, 25.9, 1.0);
}

TEST(Pcie, Gen1IsRoughlyHalfOfGen2) {
  const PcieSpec g2 = geforce_8800_gts().pcie;
  const PcieSpec g1 = geforce_8800_gtx().pcie;
  EXPECT_GT(pcie_bandwidth_gbs(g2, TransferDir::HostToDevice),
            1.5 * pcie_bandwidth_gbs(g1, TransferDir::HostToDevice));
}

TEST(Pcie, LatencyDominatesSmallTransfers) {
  const PcieSpec pcie = geforce_8800_gt().pcie;
  const double ns4 = pcie_transfer_ns(pcie, TransferDir::DeviceToHost, 4);
  EXPECT_GT(ns4, pcie.latency_us * 1e3 * 0.99);
  EXPECT_LT(ns4, pcie.latency_us * 1e3 * 1.01 + 10);
}

TEST(Pcie, TimeScalesLinearlyInSize) {
  const PcieSpec pcie = geforce_8800_gtx().pcie;
  const double t1 =
      pcie_transfer_ns(pcie, TransferDir::HostToDevice, 1 << 20);
  const double t2 =
      pcie_transfer_ns(pcie, TransferDir::HostToDevice, 2 << 20);
  const double lat = pcie.latency_us * 1e3;
  EXPECT_NEAR(t2 - lat, 2.0 * (t1 - lat), 1.0);
}

TEST(Pcie, DirectionsDiffer) {
  const PcieSpec pcie = geforce_8800_gtx().pcie;
  EXPECT_NE(pcie_bandwidth_gbs(pcie, TransferDir::HostToDevice),
            pcie_bandwidth_gbs(pcie, TransferDir::DeviceToHost));
}

}  // namespace
}  // namespace repro::sim
