#include "sim/shmem.h"

#include <gtest/gtest.h>

namespace repro::sim {
namespace {

std::vector<ShmemLaneAccess> lanes_with_stride(std::uint64_t stride,
                                               int n = 16) {
  std::vector<ShmemLaneAccess> v;
  for (int l = 0; l < n; ++l) {
    v.push_back({l, static_cast<std::uint64_t>(l) * stride, 1});
  }
  return v;
}

TEST(Shmem, SequentialWordsConflictFree) {
  EXPECT_EQ(shmem_conflict_degree(lanes_with_stride(1)), 1);
}

TEST(Shmem, Stride16HitsOneBank) {
  // All 16 lanes map to bank 0: fully serialized.
  EXPECT_EQ(shmem_conflict_degree(lanes_with_stride(16)), 16);
}

TEST(Shmem, Stride2TwoWayConflict) {
  EXPECT_EQ(shmem_conflict_degree(lanes_with_stride(2)), 2);
}

TEST(Shmem, Stride8EightWayConflict) {
  EXPECT_EQ(shmem_conflict_degree(lanes_with_stride(8)), 8);
}

TEST(Shmem, PaddedStride17ConflictFree) {
  // The paper's padding technique: stride 16+1 rotates lanes across banks.
  EXPECT_EQ(shmem_conflict_degree(lanes_with_stride(17)), 1);
}

TEST(Shmem, BroadcastIsFree) {
  std::vector<ShmemLaneAccess> v;
  for (int l = 0; l < 16; ++l) v.push_back({l, 42, 1});
  EXPECT_EQ(shmem_conflict_degree(v), 1);
}

TEST(Shmem, TwoWordAccessesUseTwoBanks) {
  // 8 lanes each touching 2 consecutive words with stride 2: covers all 16
  // banks exactly once -> conflict-free.
  std::vector<ShmemLaneAccess> v;
  for (int l = 0; l < 8; ++l) {
    v.push_back({l, static_cast<std::uint64_t>(l) * 2, 2});
  }
  EXPECT_EQ(shmem_conflict_degree(v), 1);
}

TEST(Shmem, ComplexInterleavedIsTwoWay) {
  // cx<float> stored as interleaved re/im and accessed as 2 words per lane
  // at stride 2 words across 16 lanes: words 0..31 across 16 banks = 2 per
  // bank.
  std::vector<ShmemLaneAccess> v;
  for (int l = 0; l < 16; ++l) {
    v.push_back({l, static_cast<std::uint64_t>(l) * 2, 2});
  }
  EXPECT_EQ(shmem_conflict_degree(v), 2);
}

TEST(Shmem, EmptySlot) {
  EXPECT_EQ(shmem_conflict_degree({}), 1);
}

TEST(Shmem, BankOfWordWraps) {
  EXPECT_EQ(shmem_bank_of_word(0), 0);
  EXPECT_EQ(shmem_bank_of_word(15), 15);
  EXPECT_EQ(shmem_bank_of_word(16), 0);
  EXPECT_EQ(shmem_bank_of_word(33), 1);
}

}  // namespace
}  // namespace repro::sim
