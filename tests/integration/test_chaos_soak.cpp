// Chaos soak of the end-to-end SDC defense (ISSUE 10 acceptance): at
// least 200 seeded mixed-fault requests served across the tree, mesh,
// and torus fabrics with every completion checked bit-for-bit against a
// golden fault-free run. The invariants: no silent wrong answers, no
// drops (completed + typed failures == admitted), the flaky member is
// quarantined while the fleet keeps serving, and clean probes reinstate
// it — all visible through ServiceReport counters. "No hangs" is pinned
// by determinism: the run finishing at all is the proof.
#include <gtest/gtest.h>

#include "serve/chaos.h"

namespace repro::serve {
namespace {

void expect_invariants(const ChaosOutcome& out, const std::string& label) {
  EXPECT_EQ(out.silent_wrong, 0u) << label;
  EXPECT_EQ(out.bit_correct, out.report.completed) << label;
  EXPECT_EQ(out.report.completed + out.report.failures.size(), out.admitted)
      << label;
  EXPECT_GT(out.report.completed, 0u) << label;
  for (const auto& f : out.report.failures) {
    EXPECT_FALSE(f.error.empty()) << label << " id " << f.id;
  }
  // The scoreboard is exported per member, every ordinal accounted for.
  EXPECT_EQ(out.report.member_health.size(), 4u) << label;
}

TEST(ChaosSoak, TreeMeshTorusNoSilentWrongAnswers) {
  std::size_t admitted_total = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t verify_failures = 0;
  for (const char* topo : {"tree", "mesh", "torus"}) {
    ChaosSpec spec;
    spec.seed = 20081115;
    spec.requests = 70;
    spec.topology = topo;
    const ChaosOutcome out = run_chaos(spec);
    expect_invariants(out, topo);
    admitted_total += out.admitted;
    quarantines += out.report.quarantines;
    reinstatements += out.report.reinstatements;
    verify_failures += out.report.verify_failures;
  }
  // The acceptance bar: >= 200 admitted mixed-fault requests across the
  // three fabrics, the silent corruption actually detected somewhere,
  // the flaky member quarantined, and at least one member earning its
  // way back in after clean probes.
  EXPECT_GE(admitted_total, 200u);
  EXPECT_GT(verify_failures, 0u);
  EXPECT_GE(quarantines, 1u);
  EXPECT_GE(reinstatements, 1u);
}

TEST(ChaosSoak, SeedSweepOnTreeHoldsInvariants) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 1234ULL}) {
    ChaosSpec spec;
    spec.seed = seed;
    spec.requests = 24;
    const ChaosOutcome out = run_chaos(spec);
    expect_invariants(out, "seed " + std::to_string(seed));
  }
}

TEST(ChaosSoak, FullVerifyAlsoHoldsInvariants) {
  ChaosSpec spec;
  spec.requests = 24;
  spec.verify = gpufft::VerifyPolicy::Full;
  const ChaosOutcome out = run_chaos(spec);
  expect_invariants(out, "full-verify");
}

TEST(ChaosSoak, RunsAreBitReproducible) {
  ChaosSpec spec;
  spec.requests = 16;
  const ChaosOutcome a = run_chaos(spec);
  const ChaosOutcome b = run_chaos(spec);
  EXPECT_EQ(a.report.completed, b.report.completed);
  EXPECT_EQ(a.report.failures.size(), b.report.failures.size());
  EXPECT_EQ(a.report.quarantines, b.report.quarantines);
  EXPECT_EQ(a.report.reinstatements, b.report.reinstatements);
  EXPECT_DOUBLE_EQ(a.report.makespan_ms, b.report.makespan_ms);
}

}  // namespace
}  // namespace repro::serve
