// Cross-module integration checks: agreement between every transform path,
// determinism of the simulation, and sanity of the simulated clock.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"
#include "gpufft/conventional3d.h"
#include "gpufft/naive.h"
#include "gpufft/outofcore.h"
#include "gpufft/plan.h"

namespace repro {
namespace {

using gpufft::Direction;

std::vector<cxf> run_bandwidth(const sim::GpuSpec& spec,
                               const std::vector<cxf>& input, Shape3 shape,
                               double* ms = nullptr) {
  sim::Device dev(spec);
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(input));
  gpufft::BandwidthFft3D plan(dev, shape, Direction::Forward);
  plan.execute(data);
  if (ms != nullptr) *ms = plan.last_total_ms();
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  return out;
}

TEST(Integration, AllThreeGpusComputeIdenticalResults) {
  // Timing differs per card; the functional result must be bit-identical
  // (same kernels, same arithmetic order).
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 1);
  const auto gt = run_bandwidth(sim::geforce_8800_gt(), input, shape);
  const auto gts = run_bandwidth(sim::geforce_8800_gts(), input, shape);
  const auto gtx = run_bandwidth(sim::geforce_8800_gtx(), input, shape);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    ASSERT_EQ(gt[i], gtx[i]) << i;
    ASSERT_EQ(gt[i], gts[i]) << i;
  }
}

TEST(Integration, SimulationIsDeterministic) {
  const Shape3 shape = cube(32);
  const auto input = random_complex<float>(shape.volume(), 2);
  double ms1 = 0.0;
  double ms2 = 0.0;
  const auto a = run_bandwidth(sim::geforce_8800_gtx(), input, shape, &ms1);
  const auto b = run_bandwidth(sim::geforce_8800_gtx(), input, shape, &ms2);
  EXPECT_EQ(ms1, ms2);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Integration, AllAlgorithmsAgreeWithHost) {
  const Shape3 shape = cube(64);
  const auto input = random_complex<float>(shape.volume(), 3);
  std::vector<cxf> ref = input;
  fft::Plan3D<float> host(shape, fft::Direction::Forward);
  host.execute(ref);
  const double bound = fft_error_bound<float>(shape.volume());

  sim::Device dev(sim::geforce_8800_gts());
  auto data = dev.alloc<cxf>(shape.volume());
  std::vector<cxf> out(shape.volume());

  dev.h2d(data, std::span<const cxf>(input));
  gpufft::BandwidthFft3D ours(dev, shape, Direction::Forward);
  ours.execute(data);
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref), bound) << "bandwidth plan";

  dev.h2d(data, std::span<const cxf>(input));
  gpufft::ConventionalFft3D conv(dev, shape, Direction::Forward);
  conv.execute(data);
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref), bound) << "conventional";

  dev.h2d(data, std::span<const cxf>(input));
  gpufft::NaiveFft3D naive(dev, shape, Direction::Forward);
  naive.execute(data);
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, ref), bound) << "naive";
}

TEST(Integration, OutOfCoreMatchesInCorePlan) {
  const std::size_t n = 64;
  const Shape3 shape = cube(n);
  const auto input = random_complex<float>(shape.volume(), 4);

  const auto in_core = run_bandwidth(sim::geforce_8800_gts(), input, shape);

  auto streamed = input;
  sim::Device dev(sim::geforce_8800_gts());
  gpufft::OutOfCoreFft3D plan(dev, n, 4, Direction::Forward);
  plan.execute(std::span<cxf>(streamed));

  EXPECT_LT(rel_l2_error<float>(streamed, in_core),
            fft_error_bound<float>(shape.volume()));
}

TEST(Integration, GpuRoundTripAt128) {
  const Shape3 shape = cube(128);
  const auto orig = random_complex<float>(shape.volume(), 5);
  sim::Device dev(sim::geforce_8800_gtx());
  auto data = dev.alloc<cxf>(shape.volume());
  dev.h2d(data, std::span<const cxf>(orig));
  gpufft::BandwidthFft3D fwd(dev, shape, Direction::Forward);
  gpufft::BandwidthFft3D inv(dev, shape, Direction::Inverse);
  fwd.execute(data);
  inv.execute(data);
  gpufft::ScaleKernel scale(data, shape.volume(),
                            1.0f / static_cast<float>(shape.volume()), 48);
  dev.launch(scale);
  std::vector<cxf> out(shape.volume());
  dev.d2h(std::span<cxf>(out), data);
  EXPECT_LT(rel_l2_error<float>(out, orig),
            fft_error_bound<float>(shape.volume()));
}

TEST(Integration, SimulatedTimeScalesWithVolume) {
  const auto input64 = random_complex<float>(64 * 64 * 64, 6);
  const auto input128 = random_complex<float>(128 * 128 * 128, 7);
  double ms64 = 0.0;
  double ms128 = 0.0;
  run_bandwidth(sim::geforce_8800_gt(), input64, cube(64), &ms64);
  run_bandwidth(sim::geforce_8800_gt(), input128, cube(128), &ms128);
  // 8x the data: between 4x and 16x the time (launch overheads at the
  // small end, log factors at the large end).
  EXPECT_GT(ms128, 4.0 * ms64);
  EXPECT_LT(ms128, 16.0 * ms64);
}

TEST(Integration, FasterCardIsFasterEndToEnd) {
  const Shape3 shape = cube(128);
  const auto input = random_complex<float>(shape.volume(), 8);
  double gt = 0.0;
  double gtx = 0.0;
  run_bandwidth(sim::geforce_8800_gt(), input, shape, &gt);
  run_bandwidth(sim::geforce_8800_gtx(), input, shape, &gtx);
  EXPECT_LT(gtx, gt);  // on-board: more bandwidth wins
}

}  // namespace
}  // namespace repro
