// Property-based checks of mathematical FFT invariants, parameterized over
// transform size. These guard the plan layer against subtle twiddle/ordering
// bugs that pointwise reference comparisons at a few sizes might miss.
#include <gtest/gtest.h>

#include <numbers>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/plan.h"

namespace repro::fft {
namespace {

class FftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftProperty, Linearity) {
  const std::size_t n = GetParam();
  auto a = random_complex<double>(n, n + 1);
  auto b = random_complex<double>(n, n + 2);
  const cx<double> alpha{1.25, -0.5};
  std::vector<cx<double>> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a[i] + alpha * b[i];

  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(a);
  plan.execute(b);
  plan.execute(combo);
  std::vector<cx<double>> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] + alpha * b[i];
  EXPECT_LT(rel_l2_error<double>(combo, expect), fft_error_bound<double>(n));
}

TEST_P(FftProperty, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto x = random_complex<double>(n, n + 3);
  double e_time = 0.0;
  for (const auto& z : x) e_time += z.norm2();

  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(x);
  double e_freq = 0.0;
  for (const auto& z : x) e_freq += z.norm2();

  // ||X||^2 = N * ||x||^2 for the unscaled transform.
  EXPECT_NEAR(e_freq / (static_cast<double>(n) * e_time), 1.0, 1e-12);
}

TEST_P(FftProperty, RoundTripIdentity) {
  const std::size_t n = GetParam();
  const auto orig = random_complex<double>(n, n + 4);
  auto x = orig;
  Plan1D<double> fwd(n, Direction::Forward);
  Plan1D<double> inv(n, Direction::Inverse, Scaling::ByN);
  fwd.execute(x);
  inv.execute(x);
  EXPECT_LT(rel_l2_error<double>(x, orig), fft_error_bound<double>(n));
}

TEST_P(FftProperty, DeltaTransformsToConstant) {
  const std::size_t n = GetParam();
  std::vector<cx<double>> x(n);
  x[0] = {1.0, 0.0};
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(x);
  for (const auto& z : x) {
    EXPECT_NEAR(z.re, 1.0, 1e-12);
    EXPECT_NEAR(z.im, 0.0, 1e-12);
  }
}

TEST_P(FftProperty, ConstantTransformsToDelta) {
  const std::size_t n = GetParam();
  std::vector<cx<double>> x(n, cx<double>{1.0, 0.0});
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(x);
  EXPECT_NEAR(x[0].re, static_cast<double>(n), 1e-9);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(x[k].abs(), 0.0, 1e-9) << "k=" << k;
  }
}

TEST_P(FftProperty, ShiftTheorem) {
  // x[(i+s) mod n] <-> X[k] * exp(+2*pi*i*s*k/n) for the forward transform.
  const std::size_t n = GetParam();
  if (n < 4) GTEST_SKIP();
  const std::size_t s = n / 4 + 1;
  const auto x = random_complex<double>(n, n + 5);
  std::vector<cx<double>> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + s) % n];

  auto fx = x;
  auto fs = shifted;
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(fx);
  plan.execute(fs);
  for (std::size_t k = 0; k < n; ++k) {
    const double theta = 2.0 * std::numbers::pi *
                         static_cast<double>(s * k % n) /
                         static_cast<double>(n);
    const auto phase = polar_unit<double>(theta);
    const auto expect = fx[k] * phase;
    EXPECT_NEAR(fs[k].re, expect.re, 1e-8 * (1.0 + expect.abs()));
    EXPECT_NEAR(fs[k].im, expect.im, 1e-8 * (1.0 + expect.abs()));
  }
}

TEST_P(FftProperty, ConvolutionTheorem) {
  // circular_conv(a, b) == IFFT(FFT(a) .* FFT(b)).
  const std::size_t n = GetParam();
  const auto a = random_complex<double>(n, n + 6);
  const auto b = random_complex<double>(n, n + 7);

  // Direct O(n^2) circular convolution.
  std::vector<cx<double>> direct(n);
  for (std::size_t k = 0; k < n; ++k) {
    cx<double> acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      acc += a[j] * b[(k + n - j) % n];
    }
    direct[k] = acc;
  }

  auto fa = a;
  auto fb = b;
  Plan1D<double> fwd(n, Direction::Forward);
  Plan1D<double> inv(n, Direction::Inverse, Scaling::ByN);
  fwd.execute(fa);
  fwd.execute(fb);
  std::vector<cx<double>> prod(n);
  for (std::size_t k = 0; k < n; ++k) prod[k] = fa[k] * fb[k];
  inv.execute(prod);
  EXPECT_LT(rel_l2_error<double>(prod, direct),
            fft_error_bound<double>(n, 64.0));
}

TEST_P(FftProperty, ConjugateSymmetryOfRealInput) {
  // Real input => X[n-k] == conj(X[k]).
  const std::size_t n = GetParam();
  SplitMix64 rng(n + 8);
  std::vector<cx<double>> x(n);
  for (auto& z : x) z = {rng.uniform(-1, 1), 0.0};
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(x);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(x[n - k].re, x[k].re, 1e-9);
    EXPECT_NEAR(x[n - k].im, -x[k].im, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256,
                                           512));

class Fft3DProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft3DProperty, SeparabilityAgainstAxisByAxis1D) {
  // The 3-D plan must equal three passes of batched 1-D transforms.
  const std::size_t n = GetParam();
  const Shape3 shape = cube(n);
  auto data = random_complex<double>(shape.volume(), n * 13);
  auto expect = data;

  // Reference via Plan1D on gathered pencils, axis by axis.
  Plan1D<double> p(n, Direction::Forward);
  std::vector<cx<double>> pencil(n);
  auto axis_pass = [&](auto coord_of) {
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t w = 0; w < n; ++w) pencil[w] = expect[coord_of(u, v, w)];
        p.execute(pencil);
        for (std::size_t w = 0; w < n; ++w) expect[coord_of(u, v, w)] = pencil[w];
      }
    }
  };
  axis_pass([&](auto u, auto v, auto w) { return shape.at(w, u, v); });  // X
  axis_pass([&](auto u, auto v, auto w) { return shape.at(u, w, v); });  // Y
  axis_pass([&](auto u, auto v, auto w) { return shape.at(u, v, w); });  // Z

  Plan3D<double> plan(shape, Direction::Forward);
  plan.execute(data);
  EXPECT_LT(rel_l2_error<double>(data, expect),
            fft_error_bound<double>(shape.volume()));
}

TEST_P(Fft3DProperty, ParsevalIn3D) {
  const std::size_t n = GetParam();
  const Shape3 shape = cube(n);
  auto x = random_complex<double>(shape.volume(), n * 17);
  double e_time = 0.0;
  for (const auto& z : x) e_time += z.norm2();
  Plan3D<double> plan(shape, Direction::Forward);
  plan.execute(x);
  double e_freq = 0.0;
  for (const auto& z : x) e_freq += z.norm2();
  EXPECT_NEAR(e_freq / (static_cast<double>(shape.volume()) * e_time), 1.0,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, Fft3DProperty,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace repro::fft
