// Property tests of the mixed-radix and Bluestein paths: every new size
// class (3/5/7-smooth, composite with large prime factors, primes) is held
// to the same invariants as the pow2 engine, against the O(N^2) reference.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/bluestein.h"
#include "fft/dft_ref.h"
#include "fft/factor.h"
#include "fft/plan.h"
#include "fft/plan2d.h"

namespace repro::fft {
namespace {

// The ISSUE's size list: 7-smooth composites, the decimal sizes the target
// workloads use, and primes that force the Bluestein fallback.
class MixedRadix : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, MixedRadix,
                         ::testing::Values(6, 12, 15, 97, 100, 120, 251,
                                           1000));

TEST(RadixSchedule, CoversSmoothSizesAndPreservesPow2Order) {
  // Pow2 decomposition identical to the historic radix-4/2 rule.
  const auto s32 = radix_schedule(32);
  ASSERT_EQ(s32.size(), 3u);
  EXPECT_EQ(s32[0].radix, 4u);
  EXPECT_EQ(s32[1].radix, 4u);
  EXPECT_EQ(s32[2].radix, 2u);

  const auto s1000 = radix_schedule(1000);  // 2^3 * 5^3
  std::size_t prod = 1;
  for (const auto& st : s1000) {
    EXPECT_EQ(st.radix * st.l * st.m, 1000u);
    prod *= st.radix;
  }
  EXPECT_EQ(prod, 1000u);

  EXPECT_TRUE(radix_schedule(97).empty());  // prime > 7
  EXPECT_TRUE(is_7smooth(2 * 3 * 5 * 7 * 8 * 9));
  EXPECT_FALSE(is_7smooth(97));
  EXPECT_EQ(factorization_string(1000), "2^3*5^3");
  EXPECT_EQ(factorization_string(97), "97");
  EXPECT_EQ(bluestein_length(97), 256u);
  EXPECT_EQ(bluestein_length(251), 512u);
}

TEST_P(MixedRadix, MatchesDftReference) {
  const std::size_t n = GetParam();
  auto x = random_complex<double>(n, 2026 + n);
  auto ref = x;
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(x);
  ref = dft_1d<double>(ref, Direction::Forward);
  EXPECT_LT(rel_l2_error<double>(x, ref), fft_error_bound<double>(n));
}

TEST_P(MixedRadix, InverseMatchesDftReference) {
  const std::size_t n = GetParam();
  auto x = random_complex<double>(n, 4052 + n);
  auto ref = x;
  Plan1D<double> plan(n, Direction::Inverse);
  plan.execute(x);
  ref = dft_1d<double>(ref, Direction::Inverse);
  EXPECT_LT(rel_l2_error<double>(x, ref), fft_error_bound<double>(n));
}

TEST_P(MixedRadix, RoundTrip) {
  const std::size_t n = GetParam();
  const auto orig = random_complex<double>(n, 11 + n);
  auto x = orig;
  Plan1D<double>(n, Direction::Forward).execute(x);
  Plan1D<double>(n, Direction::Inverse, Scaling::ByN).execute(x);
  EXPECT_LT(rel_l2_error<double>(x, orig), fft_error_bound<double>(n));
}

TEST_P(MixedRadix, Linearity) {
  const std::size_t n = GetParam();
  auto a = random_complex<double>(n, 21 + n);
  auto b = random_complex<double>(n, 22 + n);
  const cx<double> alpha{0.75, -1.5};
  std::vector<cx<double>> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a[i] + alpha * b[i];
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(a);
  plan.execute(b);
  plan.execute(combo);
  std::vector<cx<double>> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] + alpha * b[i];
  EXPECT_LT(rel_l2_error<double>(combo, expect), fft_error_bound<double>(n));
}

TEST_P(MixedRadix, Parseval) {
  const std::size_t n = GetParam();
  auto x = random_complex<double>(n, 31 + n);
  double e_time = 0.0;
  for (const auto& z : x) e_time += z.norm2();
  Plan1D<double>(n, Direction::Forward).execute(x);
  double e_freq = 0.0;
  for (const auto& z : x) e_freq += z.norm2();
  EXPECT_NEAR(e_freq / (static_cast<double>(n) * e_time), 1.0, 1e-10);
}

TEST_P(MixedRadix, ConvolutionTheorem) {
  const std::size_t n = GetParam();
  const auto a = random_complex<double>(n, 41 + n);
  const auto b = random_complex<double>(n, 42 + n);

  // Direct O(n^2) circular convolution.
  std::vector<cx<double>> direct(n, cx<double>{0, 0});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      direct[(i + j) % n] += a[i] * b[j];
    }
  }

  // FFT route: IFFT(FFT(a) .* FFT(b)).
  auto fa = a;
  auto fb = b;
  Plan1D<double> fwd(n, Direction::Forward);
  fwd.execute(fa);
  fwd.execute(fb);
  std::vector<cx<double>> prod(n);
  for (std::size_t i = 0; i < n; ++i) prod[i] = fa[i] * fb[i];
  Plan1D<double>(n, Direction::Inverse, Scaling::ByN).execute(prod);

  EXPECT_LT(rel_l2_error<double>(prod, direct), fft_error_bound<double>(n));
}

TEST_P(MixedRadix, BatchedRowsMatchSingleRows) {
  const std::size_t n = GetParam();
  const std::size_t batch = 3;
  auto data = random_complex<double>(n * batch, 51 + n);
  auto rows = data;
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(data, batch);
  for (std::size_t r = 0; r < batch; ++r) {
    plan.execute(std::span<cx<double>>(rows.data() + r * n, n));
  }
  // Bit-for-bit: the batched path runs the same stages over each row.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].re, rows[i].re);
    EXPECT_EQ(data[i].im, rows[i].im);
  }
}

TEST(MixedRadix3D, SmallVolumeMatchesDftReference) {
  const Shape3 shape{20, 12, 6};  // 2^2*5, 2^2*3, 2*3 — all smooth
  auto x = random_complex<double>(shape.volume(), 61);
  auto ref = x;
  fft_3d_inplace<double>(x, shape, Direction::Forward);
  ref = dft_3d<double>(ref, shape, Direction::Forward);
  EXPECT_LT(rel_l2_error<double>(x, ref),
            fft_error_bound<double>(shape.volume()));
}

TEST(MixedRadix3D, BluesteinAxisVolumeMatchesDftReference) {
  const Shape3 shape{11, 6, 13};  // two Bluestein axes, one smooth
  auto x = random_complex<double>(shape.volume(), 62);
  auto ref = x;
  fft_3d_inplace<double>(x, shape, Direction::Forward);
  ref = dft_3d<double>(ref, shape, Direction::Forward);
  EXPECT_LT(rel_l2_error<double>(x, ref),
            fft_error_bound<double>(shape.volume()));
}

TEST(MixedRadix2D, NonPow2PlaneMatchesDftReference) {
  const Shape2 shape{15, 9};
  auto x = random_complex<double>(shape.area(), 63);
  auto ref = x;
  Plan2D<double>(shape, Direction::Forward).execute(x);
  ref = dft_3d<double>(ref, Shape3{shape.nx, shape.ny, 1}, Direction::Forward);
  EXPECT_LT(rel_l2_error<double>(x, ref),
            fft_error_bound<double>(shape.area()));
}

TEST(MixedRadixFloat, SinglePrecisionRoundTrip) {
  for (const std::size_t n : {15u, 97u, 100u, 120u}) {
    const auto orig = random_complex<float>(n, 71 + n);
    auto x = orig;
    Plan1D<float>(n, Direction::Forward).execute(x);
    Plan1D<float>(n, Direction::Inverse, Scaling::ByN).execute(x);
    EXPECT_LT(rel_l2_error<float>(x, orig), fft_error_bound<float>(n))
        << "n=" << n;
  }
}

TEST(Bluestein, TablesAreDeterministicAndScaled) {
  Bluestein<float> a(97, Direction::Forward);
  Bluestein<float> b(97, Direction::Forward);
  EXPECT_EQ(a.conv_size(), 256u);
  ASSERT_EQ(a.chirp().size(), 97u);
  ASSERT_EQ(a.kernel_fft().size(), 256u);
  for (std::size_t i = 0; i < a.chirp().size(); ++i) {
    EXPECT_EQ(a.chirp()[i].re, b.chirp()[i].re);
    EXPECT_EQ(a.chirp()[i].im, b.chirp()[i].im);
  }
  for (std::size_t i = 0; i < a.kernel_fft().size(); ++i) {
    EXPECT_EQ(a.kernel_fft()[i].re, b.kernel_fft()[i].re);
    EXPECT_EQ(a.kernel_fft()[i].im, b.kernel_fft()[i].im);
  }
}

TEST(StockhamErrors, NonSmoothSizeNamesFactorizationAndFallback) {
  try {
    std::vector<cx<float>> x(22), s(22);
    TwiddleTable<float> tw(22, Direction::Forward);
    stockham_multirow<float>(x.data(), s.data(),
                             MultirowLayout{22, 1, 1, 22}, tw);
    FAIL() << "expected unsupported-size error";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2*11"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Bluestein"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace repro::fft
