#include "fft/stockham.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::fft {
namespace {

template <typename T>
void check_1d(std::size_t n, Direction dir, std::uint64_t seed) {
  auto data = random_complex<T>(n, seed);
  const auto ref = dft_1d<T>(std::span<const cx<T>>(data), dir);
  std::vector<cx<T>> scratch(n);
  const TwiddleTable<T> tw(n, dir);
  stockham_multirow<T>(data.data(), scratch.data(),
                       MultirowLayout{n, 1, 1, 1}, tw);
  EXPECT_LT(rel_l2_error<T>(data, ref), fft_error_bound<T>(n)) << "n=" << n;
}

class StockhamSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StockhamSizes, MatchesDftForwardDouble) {
  check_1d<double>(GetParam(), Direction::Forward, GetParam());
}

TEST_P(StockhamSizes, MatchesDftInverseDouble) {
  check_1d<double>(GetParam(), Direction::Inverse, GetParam() + 1000);
}

TEST_P(StockhamSizes, MatchesDftForwardFloat) {
  check_1d<float>(GetParam(), Direction::Forward, GetParam() + 2000);
}

INSTANTIATE_TEST_SUITE_P(AllPow2, StockhamSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512, 1024, 2048));

TEST(Stockham, StridedTransform) {
  // Transform length 16 embedded with point stride 5 in a larger buffer.
  const std::size_t n = 16;
  const std::size_t stride = 5;
  auto packed = random_complex<double>(n, 77);
  const auto ref = dft_1d<double>(std::span<const cx<double>>(packed),
                                  Direction::Forward);

  std::vector<cx<double>> buf(n * stride, cx<double>{-99.0, -99.0});
  for (std::size_t i = 0; i < n; ++i) buf[i * stride] = packed[i];
  std::vector<cx<double>> scratch(buf.size());
  const TwiddleTable<double> tw(n, Direction::Forward);
  stockham_multirow<double>(buf.data(), scratch.data(),
                            MultirowLayout{n, stride, 1, 1}, tw);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(buf[i * stride].re, ref[i].re, 1e-12);
    EXPECT_NEAR(buf[i * stride].im, ref[i].im, 1e-12);
  }
  // Elements between the stride slots are untouched.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i % stride != 0) {
      EXPECT_EQ(buf[i].re, -99.0);
    }
  }
}

TEST(Stockham, MultirowMatchesRowByRow) {
  // 8 rows of length 64 laid out as rows-fastest (row_stride 1, point
  // stride 8) — the vector-machine multirow pattern.
  const std::size_t n = 64;
  const std::size_t rows = 8;
  auto data = random_complex<double>(n * rows, 31);
  auto expect = data;

  const TwiddleTable<double> tw(n, Direction::Forward);
  std::vector<cx<double>> scratch(data.size());

  // Reference: transform each row independently via a packed copy.
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<cx<double>> row(n);
    for (std::size_t p = 0; p < n; ++p) row[p] = expect[r + p * rows];
    auto t = dft_1d<double>(std::span<const cx<double>>(row),
                            Direction::Forward);
    for (std::size_t p = 0; p < n; ++p) expect[r + p * rows] = t[p];
  }

  stockham_multirow<double>(data.data(), scratch.data(),
                            MultirowLayout{n, rows, rows, 1}, tw);
  EXPECT_LT(rel_l2_error<double>(data, expect), fft_error_bound<double>(n));
}

TEST(Stockham, BatchedContiguousRows) {
  const std::size_t n = 128;
  const std::size_t rows = 6;
  auto data = random_complex<float>(n * rows, 5150);
  auto expect = data;
  for (std::size_t r = 0; r < rows; ++r) {
    auto t = dft_1d<float>(
        std::span<const cx<float>>(expect).subspan(r * n, n),
        Direction::Forward);
    std::copy(t.begin(), t.end(), expect.begin() + r * n);
  }
  std::vector<cx<float>> scratch(data.size());
  const TwiddleTable<float> tw(n, Direction::Forward);
  stockham_multirow<float>(data.data(), scratch.data(),
                           MultirowLayout{n, 1, rows, n}, tw);
  EXPECT_LT(rel_l2_error<float>(data, expect), fft_error_bound<float>(n));
}

TEST(Stockham, SizeOneIsIdentity) {
  std::vector<cx<double>> data{{3.0, -4.0}};
  std::vector<cx<double>> scratch(1);
  const TwiddleTable<double> tw(1, Direction::Forward);
  stockham_multirow<double>(data.data(), scratch.data(),
                            MultirowLayout{1, 1, 1, 1}, tw);
  EXPECT_EQ(data[0], (cx<double>{3.0, -4.0}));
}

}  // namespace
}  // namespace repro::fft
