#include "fft/real.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::fft {
namespace {

template <typename T>
std::vector<T> random_reals(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

class R2CSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2CSizes, MatchesComplexTransformOfRealInput) {
  const std::size_t n = GetParam();
  const auto x = random_reals<double>(n, n);

  // Reference: complex DFT of the real signal.
  std::vector<cxd> cin(n);
  for (std::size_t i = 0; i < n; ++i) cin[i] = {x[i], 0.0};
  const auto ref =
      dft_1d<double>(std::span<const cxd>(cin), Direction::Forward);

  PlanR2C<double> plan(n);
  std::vector<cxd> half(plan.spectrum_size());
  plan.execute(x, half);
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(half[k].re, ref[k].re, 1e-9 * (1.0 + std::abs(ref[k].re)))
        << "k=" << k;
    EXPECT_NEAR(half[k].im, ref[k].im, 1e-9 * (1.0 + std::abs(ref[k].im)))
        << "k=" << k;
  }
}

TEST_P(R2CSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto x = random_reals<float>(n, n + 1);
  PlanR2C<float> fwd(n);
  PlanC2R<float> inv(n);
  std::vector<cxf> half(fwd.spectrum_size());
  std::vector<float> back(n);
  fwd.execute(x, half);
  inv.execute(half, back);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-5f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2, R2CSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(R2C, DcAndNyquistAreReal) {
  const std::size_t n = 128;
  const auto x = random_reals<double>(n, 7);
  PlanR2C<double> plan(n);
  std::vector<cxd> half(plan.spectrum_size());
  plan.execute(x, half);
  EXPECT_NEAR(half[0].im, 0.0, 1e-12);
  EXPECT_NEAR(half[n / 2].im, 0.0, 1e-12);
}

TEST(R2C, ParsevalWithHalfSpectrum) {
  const std::size_t n = 256;
  const auto x = random_reals<double>(n, 8);
  double e_time = 0.0;
  for (double v : x) e_time += v * v;

  PlanR2C<double> plan(n);
  std::vector<cxd> half(plan.spectrum_size());
  plan.execute(x, half);
  // ||X||^2 over the full spectrum = |X0|^2 + |Xn/2|^2 + 2*sum interior.
  double e_freq = half[0].norm2() + half[n / 2].norm2();
  for (std::size_t k = 1; k < n / 2; ++k) e_freq += 2.0 * half[k].norm2();
  EXPECT_NEAR(e_freq / (static_cast<double>(n) * e_time), 1.0, 1e-12);
}

TEST(R2C, CosineHitsSingleBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * 3.14159265358979323846 * static_cast<double>(k0) *
                    static_cast<double>(i) / static_cast<double>(n));
  }
  PlanR2C<double> plan(n);
  std::vector<cxd> half(plan.spectrum_size());
  plan.execute(x, half);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    if (k == k0) {
      EXPECT_NEAR(half[k].re, static_cast<double>(n) / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(half[k].abs(), 0.0, 1e-9) << "k=" << k;
    }
  }
}

TEST(R2C, RejectsBadSizes) {
  // Even non-pow2 sizes are fine now (half-length plan is mixed-radix).
  EXPECT_NO_THROW(PlanR2C<float>(12));
  EXPECT_THROW(PlanC2R<float>(0), Error);
}

TEST(R2C, RejectsOddSizesWithClearMessage) {
  // The half-length packing trick needs an even n; odd lengths must fail
  // loudly — naming the factorization and the fix — not mis-transform.
  for (const std::size_t n : {std::size_t{1}, std::size_t{9},
                              std::size_t{15}}) {
    try {
      PlanR2C<float> plan(n);
      FAIL() << "PlanR2C accepted n=" << n;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("even size"), std::string::npos)
          << "n=" << n << " message: " << e.what();
      EXPECT_NE(std::string(e.what()).find("pad"), std::string::npos)
          << "n=" << n << " message: " << e.what();
    }
    try {
      PlanC2R<double> plan(n);
      FAIL() << "PlanC2R accepted n=" << n;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("even size"), std::string::npos)
          << "n=" << n << " message: " << e.what();
    }
  }
}

TEST(R2C, RejectsWrongSpans) {
  PlanR2C<float> plan(16);
  std::vector<float> in(16);
  std::vector<cxf> out(8);  // needs 9
  EXPECT_THROW(plan.execute(in, out), Error);
}

}  // namespace
}  // namespace repro::fft
