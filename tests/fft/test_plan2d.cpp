#include "fft/plan2d.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::fft {
namespace {

/// Reference 2-D DFT via row/column 1-D reference transforms.
std::vector<cxd> dft_2d(std::span<const cxd> in, Shape2 s, Direction dir) {
  std::vector<cxd> data(in.begin(), in.end());
  std::vector<cxd> line;
  line.resize(s.nx);
  for (std::size_t y = 0; y < s.ny; ++y) {
    for (std::size_t x = 0; x < s.nx; ++x) line[x] = data[s.at(x, y)];
    auto t = dft_1d<double>(std::span<const cxd>(line), dir);
    for (std::size_t x = 0; x < s.nx; ++x) data[s.at(x, y)] = t[x];
  }
  line.resize(s.ny);
  for (std::size_t x = 0; x < s.nx; ++x) {
    for (std::size_t y = 0; y < s.ny; ++y) line[y] = data[s.at(x, y)];
    auto t = dft_1d<double>(std::span<const cxd>(line), dir);
    for (std::size_t y = 0; y < s.ny; ++y) data[s.at(x, y)] = t[y];
  }
  return data;
}

class Plan2DSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(Plan2DSizes, MatchesReference) {
  const auto [nx, ny] = GetParam();
  const Shape2 s{nx, ny};
  auto data = random_complex<double>(s.area(), nx * 100 + ny);
  const auto ref = dft_2d(std::span<const cxd>(data), s, Direction::Forward);
  Plan2D<double> plan(s, Direction::Forward);
  plan.execute(data);
  EXPECT_LT(rel_l2_error<double>(data, ref), fft_error_bound<double>(s.area()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Plan2DSizes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{4, 64},
                      std::pair<std::size_t, std::size_t>{128, 32}));

TEST(Plan2D, RoundTrip) {
  const Shape2 s{64, 32};
  const auto orig = random_complex<float>(s.area(), 9);
  auto data = orig;
  Plan2D<float> fwd(s, Direction::Forward);
  Plan2D<float> inv(s, Direction::Inverse, Scaling::ByN);
  fwd.execute(data);
  inv.execute(data);
  EXPECT_LT(rel_l2_error<float>(data, orig), fft_error_bound<float>(s.area()));
}

TEST(Plan2D, ParsevalHolds) {
  const Shape2 s{32, 32};
  auto data = random_complex<double>(s.area(), 4);
  double e_in = 0.0;
  for (const auto& z : data) e_in += z.norm2();
  Plan2D<double> plan(s, Direction::Forward);
  plan.execute(data);
  double e_out = 0.0;
  for (const auto& z : data) e_out += z.norm2();
  EXPECT_NEAR(e_out / (static_cast<double>(s.area()) * e_in), 1.0, 1e-12);
}

TEST(Plan2D, AcceptsNonPow2RejectsEmpty) {
  EXPECT_NO_THROW(Plan2D<float>(Shape2{12, 8}, Direction::Forward));
  EXPECT_THROW(Plan2D<float>(Shape2{0, 8}, Direction::Forward), Error);
}

}  // namespace
}  // namespace repro::fft
