// The fixed-size register kernels are the arithmetic heart of the simulated
// GPU kernels; verify each against the O(N^2) reference DFT.
#include "fft/radix.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::fft {
namespace {

template <typename T>
void check_fixed(std::size_t n, Direction dir, std::uint64_t seed) {
  const int sign = direction_sign(dir);
  auto in = random_complex<T>(n, seed);
  auto ref = dft_1d<T>(std::span<const cx<T>>(in), dir);

  std::vector<cx<T>> v = in;
  const TwiddleTable<T> tw(n, dir);
  std::vector<cx<T>> twv(n);
  for (std::size_t k = 0; k < n; ++k) twv[k] = tw[k];

  switch (n) {
    case 2:
      fft2(v[0], v[1]);
      break;
    case 4:
      fft4(v.data(), sign);
      break;
    case 8:
      fft8(v.data(), sign, twv.data());
      break;
    case 16:
      fft16(v.data(), sign, twv.data());
      break;
    default:
      FAIL() << "unsupported size";
  }
  EXPECT_LT(rel_l2_error<T>(v, ref), fft_error_bound<T>(n))
      << "n=" << n << " dir=" << (sign < 0 ? "fwd" : "inv");
}

TEST(Radix, Fft2MatchesDft) {
  check_fixed<double>(2, Direction::Forward, 1);
  check_fixed<double>(2, Direction::Inverse, 2);
}

TEST(Radix, Fft4MatchesDft) {
  check_fixed<double>(4, Direction::Forward, 3);
  check_fixed<double>(4, Direction::Inverse, 4);
  check_fixed<float>(4, Direction::Forward, 5);
}

TEST(Radix, Fft8MatchesDft) {
  check_fixed<double>(8, Direction::Forward, 6);
  check_fixed<double>(8, Direction::Inverse, 7);
  check_fixed<float>(8, Direction::Forward, 8);
}

TEST(Radix, Fft16MatchesDft) {
  check_fixed<double>(16, Direction::Forward, 9);
  check_fixed<double>(16, Direction::Inverse, 10);
  check_fixed<float>(16, Direction::Forward, 11);
  check_fixed<float>(16, Direction::Inverse, 12);
}

TEST(Radix, Fft4DeltaGivesConstant) {
  cx<double> v[4] = {{1, 0}, {0, 0}, {0, 0}, {0, 0}};
  fft4(v, -1);
  for (const auto& z : v) {
    EXPECT_DOUBLE_EQ(z.re, 1.0);
    EXPECT_DOUBLE_EQ(z.im, 0.0);
  }
}

TEST(Radix, Fft16Linearity) {
  const TwiddleTable<double> tw(16, Direction::Forward);
  cx<double> w[16];
  for (int k = 0; k < 16; ++k) w[k] = tw[k];

  auto a = random_complex<double>(16, 21);
  auto b = random_complex<double>(16, 22);
  const cx<double> alpha{0.7, -1.3};

  std::vector<cx<double>> combo(16);
  for (int i = 0; i < 16; ++i) combo[i] = a[i] + alpha * b[i];

  auto fa = a;
  auto fb = b;
  auto fc = combo;
  fft16(fa.data(), -1, w);
  fft16(fb.data(), -1, w);
  fft16(fc.data(), -1, w);
  for (int i = 0; i < 16; ++i) {
    const auto expect = fa[i] + alpha * fb[i];
    EXPECT_NEAR(fc[i].re, expect.re, 1e-12);
    EXPECT_NEAR(fc[i].im, expect.im, 1e-12);
  }
}

TEST(Radix, FlopCountsArePositiveAndOrdered) {
  EXPECT_GT(kFft4Flops, 0u);
  EXPECT_GT(kFft8Flops, kFft4Flops);
  EXPECT_GT(kFft16Flops, kFft8Flops);
}

}  // namespace
}  // namespace repro::fft
