#include "fft/twiddle.h"

#include <gtest/gtest.h>

#include <numbers>

namespace repro::fft {
namespace {

TEST(Twiddle, ForwardSignIsNegative) {
  EXPECT_EQ(direction_sign(Direction::Forward), -1);
  EXPECT_EQ(direction_sign(Direction::Inverse), +1);
}

TEST(Twiddle, UnitCircleValues) {
  const TwiddleTable<double> w(4, Direction::Forward);
  EXPECT_NEAR(w[0].re, 1.0, 1e-15);
  EXPECT_NEAR(w[0].im, 0.0, 1e-15);
  EXPECT_NEAR(w[1].re, 0.0, 1e-15);
  EXPECT_NEAR(w[1].im, -1.0, 1e-15);  // exp(-i*pi/2)
  EXPECT_NEAR(w[2].re, -1.0, 1e-15);
  EXPECT_NEAR(w[3].im, 1.0, 1e-15);
}

TEST(Twiddle, InverseIsConjugate) {
  const TwiddleTable<double> f(64, Direction::Forward);
  const TwiddleTable<double> i(64, Direction::Inverse);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(f[k].re, i[k].re, 1e-15);
    EXPECT_NEAR(f[k].im, -i[k].im, 1e-15);
  }
}

TEST(Twiddle, AllOnUnitCircle) {
  const TwiddleTable<float> w(256, Direction::Forward);
  for (std::size_t k = 0; k < 256; ++k) {
    EXPECT_NEAR(w[k].norm2(), 1.0f, 1e-6f);
  }
}

TEST(Twiddle, GroupProperty) {
  // W^a * W^b == W^(a+b mod n).
  const TwiddleTable<double> w(128, Direction::Forward);
  for (std::size_t a : {3u, 17u, 99u}) {
    for (std::size_t b : {5u, 60u, 127u}) {
      const auto p = w[a] * w[b];
      const auto q = w.at_mod(a + b);
      EXPECT_NEAR(p.re, q.re, 1e-14);
      EXPECT_NEAR(p.im, q.im, 1e-14);
    }
  }
}

TEST(Twiddle, AtModWraps) {
  const TwiddleTable<double> w(16, Direction::Inverse);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_EQ(w.at_mod(k).re, w[k % 16].re);
    EXPECT_EQ(w.at_mod(k).im, w[k % 16].im);
  }
}

}  // namespace
}  // namespace repro::fft
