#include "fft/plan.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "fft/dft_ref.h"

namespace repro::fft {
namespace {

TEST(Plan1D, MatchesReference) {
  for (std::size_t n : {8u, 64u, 256u, 1024u}) {
    auto data = random_complex<double>(n, n);
    const auto ref =
        dft_1d<double>(std::span<const cx<double>>(data), Direction::Forward);
    Plan1D<double> plan(n, Direction::Forward);
    plan.execute(data);
    EXPECT_LT(rel_l2_error<double>(data, ref), fft_error_bound<double>(n));
  }
}

TEST(Plan1D, RoundTripWithScaling) {
  const std::size_t n = 512;
  const auto orig = random_complex<float>(n, 404);
  auto data = orig;
  Plan1D<float> fwd(n, Direction::Forward);
  Plan1D<float> inv(n, Direction::Inverse, Scaling::ByN);
  fwd.execute(data);
  inv.execute(data);
  EXPECT_LT(rel_l2_error<float>(data, orig), fft_error_bound<float>(n));
}

TEST(Plan1D, BatchedExecution) {
  const std::size_t n = 64;
  const std::size_t batch = 16;
  auto data = random_complex<double>(n * batch, 8);
  auto expect = data;
  for (std::size_t b = 0; b < batch; ++b) {
    auto t = dft_1d<double>(
        std::span<const cx<double>>(expect).subspan(b * n, n),
        Direction::Forward);
    std::copy(t.begin(), t.end(), expect.begin() + b * n);
  }
  Plan1D<double> plan(n, Direction::Forward);
  plan.execute(data, batch);
  EXPECT_LT(rel_l2_error<double>(data, expect), fft_error_bound<double>(n));
}

TEST(Plan1D, AcceptsAnySizeRejectsZero) {
  // Non-pow2 sizes route through the mixed-radix/Bluestein engines.
  EXPECT_NO_THROW(Plan1D<float>(24, Direction::Forward));
  EXPECT_NO_THROW(Plan1D<float>(97, Direction::Forward));
  EXPECT_THROW(Plan1D<float>(0, Direction::Forward), Error);
}

TEST(Plan1D, RejectsWrongSpanSize) {
  Plan1D<float> plan(16, Direction::Forward);
  std::vector<cx<float>> data(17);
  EXPECT_THROW(plan.execute(data), Error);
}

TEST(Plan3D, MatchesReferenceSmallCubes) {
  for (std::size_t n : {4u, 8u, 16u}) {
    const Shape3 shape = cube(n);
    auto data = random_complex<double>(shape.volume(), n * 31);
    const auto ref = dft_3d<double>(std::span<const cx<double>>(data), shape,
                                    Direction::Forward);
    Plan3D<double> plan(shape, Direction::Forward);
    plan.execute(data);
    EXPECT_LT(rel_l2_error<double>(data, ref),
              fft_error_bound<double>(shape.volume()));
  }
}

TEST(Plan3D, NonCubicVolume) {
  const Shape3 shape{16, 4, 8};
  auto data = random_complex<double>(shape.volume(), 12345);
  const auto ref = dft_3d<double>(std::span<const cx<double>>(data), shape,
                                  Direction::Forward);
  Plan3D<double> plan(shape, Direction::Forward);
  plan.execute(data);
  EXPECT_LT(rel_l2_error<double>(data, ref),
            fft_error_bound<double>(shape.volume()));
}

TEST(Plan3D, RoundTrip) {
  const Shape3 shape = cube(32);
  const auto orig = random_complex<float>(shape.volume(), 777);
  auto data = orig;
  Plan3D<float> fwd(shape, Direction::Forward);
  Plan3D<float> inv(shape, Direction::Inverse, Scaling::ByN);
  fwd.execute(data);
  inv.execute(data);
  EXPECT_LT(rel_l2_error<float>(data, orig),
            fft_error_bound<float>(shape.volume()));
}

TEST(Plan3D, AcceptsNonPow2ExtentRejectsEmpty) {
  EXPECT_NO_THROW(Plan3D<float>(Shape3{12, 16, 16}, Direction::Forward));
  EXPECT_THROW(Plan3D<float>(Shape3{0, 16, 16}, Direction::Forward), Error);
}

TEST(OneShotHelpers, Work) {
  auto a = random_complex<double>(64, 2);
  auto b = a;
  fft_1d_inplace<double>(a, Direction::Forward);
  Plan1D<double> plan(64, Direction::Forward);
  plan.execute(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace repro::fft
