// FftService: admission control, mixed-workload draining, latency
// accounting, and mid-stream fault tolerance.
#include "serve/fft_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "serve/workload.h"
#include "sim/fault.h"
#include "sim/topology/peer_mesh.h"

namespace repro::serve {
namespace {

using gpufft::Direction;
using gpufft::PlanDesc;

bool bit_identical(std::span<const cxf> a, std::span<const cxf> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].re != b[i].re || a[i].im != b[i].im) return false;
  }
  return true;
}

TEST(FftService, DrainsMixedSmokeWorkload) {
  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  FftService service(group);
  Workload workload(WorkloadSpec::smoke());
  for (const auto& req : workload.requests()) {
    ASSERT_EQ(service.submit(req), Admission::Accepted) << req.id;
  }
  EXPECT_EQ(service.queue_depth(), workload.requests().size());

  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, workload.requests().size());
  EXPECT_EQ(rep.rejected_queue_full, 0u);
  EXPECT_EQ(rep.rejected_bytes, 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_GT(rep.volumes_per_sec, 0.0);
  EXPECT_GT(rep.latency.p50_ms, 0.0);
  EXPECT_GE(rep.latency.p99_ms, rep.latency.p50_ms);
  EXPECT_GE(rep.latency.max_ms, rep.latency.p99_ms);
  EXPECT_EQ(rep.max_queue_depth, workload.requests().size());
  // The report names the fabric it served over (the default tree here).
  EXPECT_EQ(rep.topology, "pcie-tree");
  EXPECT_DOUBLE_EQ(rep.bisection_gbs, 12.8 / 2.0);
  // Every request completed at or after its arrival.
  std::vector<bool> seen(workload.requests().size(), false);
  for (const auto& c : rep.completions) {
    EXPECT_GT(c.latency_ms, 0.0) << c.id;
    seen[c.id] = true;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "request " << i << " was dropped";
  }
}

TEST(FftService, ResultsMatchDirectExecution) {
  const std::size_t n = 32;
  const auto desc = PlanDesc::sharded3d(n, 4, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (std::size_t k = 0; k < 3; ++k) {
    volumes.push_back(random_complex<float>(n * n * n, 40 + k));
  }
  // Reference: the serial sharded plan on an identical fresh fleet.
  std::vector<std::vector<cxf>> expect = volumes;
  {
    sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
    gpufft::ShardedFft3DPlan ref(ref_group, n, 4, Direction::Forward);
    for (auto& v : expect) ref.execute(std::span<cxf>(v));
  }

  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  FftService service(group);
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    FftRequest req;
    req.id = k;
    req.desc = desc;
    req.data = std::span<cxf>(volumes[k]);
    req.arrival_ms = 0.1 * static_cast<double>(k);
    ASSERT_EQ(service.submit(req), Admission::Accepted);
  }
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, volumes.size());
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    EXPECT_TRUE(bit_identical(volumes[k], expect[k])) << k;
  }
}

TEST(FftService, ServesOverPeerFabricsAndReportsTheTopology) {
  // Same requests over a mesh fleet: identical results (the exchange
  // path is functionally invisible) and the report names the fabric.
  const std::size_t n = 32;
  const auto desc = PlanDesc::sharded3d(n, 4, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (std::size_t k = 0; k < 2; ++k) {
    volumes.push_back(random_complex<float>(n * n * n, 60 + k));
  }
  std::vector<std::vector<cxf>> expect = volumes;
  {
    sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
    gpufft::ShardedFft3DPlan ref(ref_group, n, 4, Direction::Forward);
    for (auto& v : expect) ref.execute(std::span<cxf>(v));
  }

  sim::DeviceGroup mesh(4, sim::geforce_8800_gts(),
                        std::make_shared<sim::PeerMeshTopology>(4));
  FftService service(mesh);
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    FftRequest req;
    req.id = k;
    req.desc = desc;
    req.data = std::span<cxf>(volumes[k]);
    req.arrival_ms = 0.1 * static_cast<double>(k);
    ASSERT_EQ(service.submit(req), Admission::Accepted);
  }
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, volumes.size());
  EXPECT_EQ(rep.topology, "peer-mesh");
  EXPECT_DOUBLE_EQ(rep.bisection_gbs, 2.0 * 16.0);
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    EXPECT_TRUE(bit_identical(volumes[k], expect[k])) << k;
  }
}

TEST(FftService, RejectsWhenQueueIsFull) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ServiceConfig cfg;
  cfg.max_queue_depth = 2;
  FftService service(group, cfg);
  const std::size_t n = 32;
  const auto desc = PlanDesc::sharded3d(n, 4, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (std::size_t k = 0; k < 3; ++k) {
    volumes.push_back(random_complex<float>(n * n * n, 80 + k));
  }
  EXPECT_EQ(service.submit({0, desc, std::span<cxf>(volumes[0]), 0.0}),
            Admission::Accepted);
  EXPECT_EQ(service.submit({1, desc, std::span<cxf>(volumes[1]), 0.0}),
            Admission::Accepted);
  EXPECT_EQ(service.submit({2, desc, std::span<cxf>(volumes[2]), 0.0}),
            Admission::RejectedQueueFull);

  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.rejected_queue_full, 1u);
  EXPECT_EQ(rep.max_queue_depth, 2u);
}

TEST(FftService, RejectsRequestsOverTheByteWatermark) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ServiceConfig cfg;
  cfg.byte_watermark = 1u << 20;  // 1 MiB: fits 32^3, not 128^3
  FftService service(group, cfg);
  auto small = random_complex<float>(32 * 32 * 32, 5);
  auto large = random_complex<float>(128 * 128 * 128, 6);
  EXPECT_EQ(
      service.submit({0,
                      PlanDesc::sharded3d(32, 4, Direction::Forward),
                      std::span<cxf>(small), 0.0}),
      Admission::Accepted);
  EXPECT_EQ(
      service.submit({1,
                      PlanDesc::sharded3d(128, 8, Direction::Forward),
                      std::span<cxf>(large), 0.0}),
      Admission::RejectedBytes);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.rejected_bytes, 1u);
  // The watermark was armed on the group registry too (PR 5 semantics).
  EXPECT_EQ(gpufft::PlanRegistry::of(group).byte_watermark(), 1u << 20);
}

TEST(FftService, MidStreamDeviceLostCompletesEveryAdmittedRequest) {
  const std::size_t n = 32;
  const auto desc = PlanDesc::sharded3d(n, 4, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (std::size_t k = 0; k < 6; ++k) {
    volumes.push_back(random_complex<float>(n * n * n, 60 + k));
  }
  std::vector<std::vector<cxf>> expect = volumes;
  {
    sim::DeviceGroup ref_group(2, sim::geforce_8800_gts());
    gpufft::ShardedFft3DPlan ref(ref_group, n, 4, Direction::Forward);
    for (auto& v : expect) ref.execute(std::span<cxf>(v));
  }

  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  // Lose a member mid-drain: deep enough that several requests are
  // already queued behind the one in flight.
  group.faults(1).arm(sim::FaultKind::DeviceLost, 40);
  FftService service(group);
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    FftRequest req;
    req.id = k;
    req.desc = desc;
    req.data = std::span<cxf>(volumes[k]);
    req.arrival_ms = 0.05 * static_cast<double>(k);
    ASSERT_EQ(service.submit(req), Admission::Accepted);
  }
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, volumes.size()) << "a queued request was dropped";
  EXPECT_GE(rep.device_lost_failovers, 1u);
  EXPECT_EQ(group.alive_count(), 3u);
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    EXPECT_TRUE(bit_identical(volumes[k], expect[k])) << k;
  }
}

TEST(FftService, FusesBatchesUpToMaxBatch) {
  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  ServiceConfig cfg;
  cfg.max_batch = 4;
  FftService service(group, cfg);
  const std::size_t n = 32;
  const auto desc = PlanDesc::sharded3d(n, 4, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (std::size_t k = 0; k < 8; ++k) {
    volumes.push_back(random_complex<float>(n * n * n, 70 + k));
    FftRequest req;
    req.id = k;
    req.desc = desc;
    req.data = std::span<cxf>(volumes.back());
    req.arrival_ms = 0.0;  // all present up front: two batches of 4
    ASSERT_EQ(service.submit(req), Admission::Accepted);
  }
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.completed, 8u);
  // Batches complete in id order (queue order is preserved) and every
  // completion records the strategy the planner chose for its batch.
  double prev = 0.0;
  for (const auto& c : rep.completions) {
    EXPECT_GE(c.done_ms, prev);
    prev = c.done_ms;
  }
}

// ---- SDC defense through the service ----

TEST(FftService, InvalidExecPolicyIsRejectedTyped) {
  sim::DeviceGroup group(2, sim::geforce_8800_gts());
  ServiceConfig cfg;
  cfg.exec.staging.max_attempts = 0;
  try {
    FftService service(group, cfg);
    FAIL() << "expected InvalidPolicyError";
  } catch (const sim::InvalidPolicyError& e) {
    EXPECT_EQ(std::string(e.field()), "StagePolicy.max_attempts");
  }
  ServiceConfig cfg2;
  cfg2.exec.verify_attempts = 0;
  EXPECT_THROW(FftService(group, cfg2), sim::InvalidPolicyError);
}

TEST(FftService, FaultyWorkloadDrainsWithVerifiedRepairsAndFullLedger) {
  // The seeded smoke_faulty schedule: a hot KernelCorrupt window on one
  // member, a sparse seeded one on another, one transfer transient. With
  // Parseval on, everything must drain accounted — completed + typed
  // failures == admitted — with the repairs visible in the report.
  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  const WorkloadSpec spec = WorkloadSpec::smoke_faulty();
  Workload workload(spec);
  ServiceConfig cfg;
  cfg.exec.verify = gpufft::VerifyPolicy::Parseval;
  FftService service(group, cfg);
  arm_faults(group, spec.faults);
  std::size_t admitted = 0;
  for (const auto& req : workload.requests()) {
    if (service.submit(req) == Admission::Accepted) ++admitted;
  }
  const ServiceReport rep = service.run();

  EXPECT_EQ(rep.completed + rep.failures.size(), admitted);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.verify_failures, 0u);
  EXPECT_GT(rep.verify_recomputes, 0u);
  for (const auto& f : rep.failures) EXPECT_FALSE(f.error.empty());
  // The scoreboard is exported for every member, and the corrupting
  // members carry their incidents.
  ASSERT_EQ(rep.member_health.size(), 4u);
  std::uint64_t incidents = 0;
  for (const auto& m : rep.member_health) incidents += m.health.total();
  EXPECT_GT(incidents, 0u);
}

TEST(FftService, PersistentCorrupterIsQuarantinedAndReinstated) {
  // Member 1 corrupts every kernel launch for a long stretch: Parseval
  // keeps catching it, the windowed score trips the threshold, and the
  // member leaves the schedulable set while the fleet drains the queue.
  // The injector window closes before the post-drain probes, so clean
  // Full-verify probes earn the member its way back in.
  sim::DeviceGroup group(4, sim::geforce_8800_gts());
  ServiceConfig cfg;
  cfg.exec.verify = gpufft::VerifyPolicy::Parseval;
  cfg.exec.verify_attempts = 4;
  cfg.health.quarantine_threshold = 2;
  cfg.health.clean_probes_to_reinstate = 1;
  FftService service(group, cfg);
  group.faults(1).arm(sim::FaultKind::KernelCorrupt, 1, 400);

  const PlanDesc desc = PlanDesc::out_of_core(16, 2, Direction::Forward);
  std::vector<std::vector<cxf>> volumes;
  for (int i = 0; i < 6; ++i) {
    volumes.push_back(random_complex<float>(desc.buffer_elements(), 900 + i));
  }
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    FftRequest req;
    req.id = i;
    req.desc = desc;
    req.data = volumes[i];
    req.arrival_ms = 0.01 * static_cast<double>(i);
    ASSERT_EQ(service.submit(req), Admission::Accepted);
  }
  const ServiceReport rep = service.run();

  EXPECT_EQ(rep.completed + rep.failures.size(), 6u);
  EXPECT_GT(rep.verify_failures, 0u);
  EXPECT_GE(rep.quarantines, 1u);
  EXPECT_GE(rep.reinstatements, 1u);
  // By run() exit the member is back in the schedulable set.
  EXPECT_FALSE(group.quarantined(1));
  EXPECT_EQ(group.schedulable_count(), 4u);
  ASSERT_EQ(rep.member_health.size(), 4u);
  EXPECT_GT(rep.member_health[1].health.verify_failures, 0u);
}

}  // namespace
}  // namespace repro::serve
